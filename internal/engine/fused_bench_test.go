package engine

// Benchmarks for the fused aggregation kernels on a skewed-degree graph.
// The "seed" sub-benchmarks replicate the pre-overhaul kernels (zero-filled
// fresh outputs, accumulate-into-zero forward, serial extreme backward,
// count-split worker ranges) so one `go test -bench` run yields before/after
// throughput and allocs/op:
//
//	go test -run xxx -bench 'Fused' -benchmem ./internal/engine/
//
// Results are recorded in BENCH_kernels.json at the repo root.

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// powerLawAdjacency builds an n-vertex adjacency whose in-degrees follow a
// heavy power law: a few hub destinations own most of the edges, the regime
// where count-split chunking serialises behind hubs.
func powerLawAdjacency(rng *tensor.RNG, n, edges int) *Adjacency {
	counts := make([]int32, n)
	dsts := make([]int32, edges)
	for i := range dsts {
		u := float64(rng.Float32())
		d := int32(float64(n) * u * u * u * u)
		if int(d) >= n {
			d = int32(n - 1)
		}
		dsts[i] = d
		counts[d]++
	}
	ptr := make([]int64, n+1)
	for d, c := range counts {
		ptr[d+1] = ptr[d] + int64(c)
	}
	idx := make([]int32, edges)
	next := make([]int64, n)
	copy(next, ptr[:n])
	for _, d := range dsts {
		idx[next[d]] = int32(rng.Intn(n))
		next[d]++
	}
	return &Adjacency{NumDst: n, NumSrc: n, DstPtr: ptr, SrcIdx: idx}
}

// seedFusedForwardSum replicates the pre-overhaul fused forward: fresh
// zeroed output, accumulate every edge (no copy-first), count-split ranges.
func seedFusedForwardSum(adj *Adjacency, feats *tensor.Tensor, mean bool) *tensor.Tensor {
	dim := feats.Cols()
	out := tensor.New(adj.NumDst, dim)
	od, fd := out.Data(), feats.Data()
	tensor.ParallelFor(adj.NumDst, func(s, e int) {
		for d := s; d < e; d++ {
			dst := od[d*dim : (d+1)*dim]
			lo, hi := adj.DstPtr[d], adj.DstPtr[d+1]
			for p := lo; p < hi; p++ {
				src := int(adj.Src(p))
				tensor.AddUnrolled(dst, fd[src*dim:(src+1)*dim])
			}
			if mean && hi > lo {
				tensor.ScaleUnrolled(dst, 1/float32(hi-lo))
			}
		}
	})
	return out
}

// seedFusedSumMean wraps the seed forward and backward into an autograd op,
// exactly as the pre-overhaul engine registered it.
func seedFusedSumMean(adj *Adjacency, feats *nn.Value, mean bool) *nn.Value {
	data := seedFusedForwardSum(adj, feats.Data, mean)
	backward := func(out *nn.Value) {
		rev := adj.Reverse()
		dim := feats.Data.Cols()
		grad := tensor.New(feats.Data.Shape()...)
		gd, od := grad.Data(), out.Grad.Data()
		var degInv []float32
		if mean {
			degInv = make([]float32, adj.NumDst)
			for d := 0; d < adj.NumDst; d++ {
				if deg := adj.DstPtr[d+1] - adj.DstPtr[d]; deg > 0 {
					degInv[d] = 1 / float32(deg)
				}
			}
		}
		tensor.ParallelFor(rev.NumDst, func(s, e int) {
			for v := s; v < e; v++ {
				dst := gd[v*dim : (v+1)*dim]
				for p := rev.DstPtr[v]; p < rev.DstPtr[v+1]; p++ {
					d := int(rev.SrcIdx[p])
					row := od[d*dim : (d+1)*dim]
					if mean {
						tensor.AxpyUnrolled(dst, row, degInv[d])
					} else {
						tensor.AddUnrolled(dst, row)
					}
				}
			}
		})
		nn.AccumGrad(feats, grad)
	}
	return nn.NewOp(data, backward, feats)
}

// seedFusedMax replicates the pre-overhaul extreme kernel, including its
// serial backward loop.
func seedFusedMax(adj *Adjacency, feats *nn.Value) *nn.Value {
	dim := feats.Data.Cols()
	out := tensor.New(adj.NumDst, dim)
	argmax := make([]int32, adj.NumDst*dim)
	od, fd := out.Data(), feats.Data.Data()
	tensor.ParallelFor(adj.NumDst, func(s, e int) {
		for d := s; d < e; d++ {
			base := d * dim
			first := true
			for p := adj.DstPtr[d]; p < adj.DstPtr[d+1]; p++ {
				src := int(adj.Src(p))
				row := fd[src*dim : (src+1)*dim]
				if first {
					copy(od[base:base+dim], row)
					for j := 0; j < dim; j++ {
						argmax[base+j] = int32(src)
					}
					first = false
					continue
				}
				for j := 0; j < dim; j++ {
					if row[j] > od[base+j] {
						od[base+j] = row[j]
						argmax[base+j] = int32(src)
					}
				}
			}
			if first {
				for j := 0; j < dim; j++ {
					argmax[base+j] = -1
				}
			}
		}
	})
	backward := func(outV *nn.Value) {
		grad := tensor.New(feats.Data.Shape()...)
		gd, ogd := grad.Data(), outV.Grad.Data()
		for d := 0; d < adj.NumDst; d++ {
			base := d * dim
			for j := 0; j < dim; j++ {
				if src := argmax[base+j]; src >= 0 {
					gd[int(src)*dim+j] += ogd[base+j]
				}
			}
		}
		nn.AccumGrad(feats, grad)
	}
	return nn.NewOp(out, backward, feats)
}

const (
	fusedBenchVerts = 30000
	fusedBenchEdges = 90000
	fusedBenchDim   = 64
)

func fusedBenchInputs() (*Adjacency, *tensor.Tensor, *tensor.Tensor) {
	rng := tensor.NewRNG(7)
	adj := powerLawAdjacency(rng, fusedBenchVerts, fusedBenchEdges)
	adj.Reverse() // pre-build the cached reverse so benches time kernels only
	feats := tensor.RandN(rng, 1, fusedBenchVerts, fusedBenchDim)
	seed := tensor.RandN(rng, 1, fusedBenchVerts, fusedBenchDim)
	return adj, feats, seed
}

func benchFusedForward(b *testing.B, op tensor.ReduceOp) {
	adj, feats, _ := fusedBenchInputs()
	fv := nn.Constant(feats)
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			switch op {
			case tensor.ReduceSum, tensor.ReduceMean:
				seedFusedSumMean(adj, fv, op == tensor.ReduceMean)
			case tensor.ReduceMax:
				seedFusedMax(adj, fv)
			}
		}
	})
	b.Run("opt", func(b *testing.B) {
		ar := &tensor.Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fusedAggregate(adj, fv, op, true, ar)
			ar.Reset()
		}
	})
}

func BenchmarkFusedAggSum(b *testing.B)  { benchFusedForward(b, tensor.ReduceSum) }
func BenchmarkFusedAggMean(b *testing.B) { benchFusedForward(b, tensor.ReduceMean) }
func BenchmarkFusedAggMax(b *testing.B)  { benchFusedForward(b, tensor.ReduceMax) }

// Wide-feature-dim forward suite: dim 256 is wide enough for the
// feature-tile lever to fire when enabled. opt runs the default config
// (tiling off — it measured a loss at every dim on this machine, see
// tensor/tile.go); opt-tile enables a 64-column tile to keep that cost
// auditable, and opt-nobucket isolates the degree-bucketing lever.
func benchFusedForwardWide(b *testing.B, op tensor.ReduceOp) {
	const wideDim = 256
	rng := tensor.NewRNG(7)
	adj := powerLawAdjacency(rng, fusedBenchVerts, fusedBenchEdges)
	adj.Reverse()
	fv := nn.Constant(tensor.RandN(rng, 1, fusedBenchVerts, wideDim))
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			switch op {
			case tensor.ReduceSum, tensor.ReduceMean:
				seedFusedSumMean(adj, fv, op == tensor.ReduceMean)
			case tensor.ReduceMax:
				seedFusedMax(adj, fv)
			}
		}
	})
	opt := func(b *testing.B) {
		ar := &tensor.Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fusedAggregate(adj, fv, op, true, ar)
			ar.Reset()
		}
	}
	b.Run("opt", opt)
	b.Run("opt-tile", func(b *testing.B) {
		tileDef := tensor.FeatureTile()
		tensor.SetFeatureTile(64)
		defer tensor.SetFeatureTile(tileDef)
		opt(b)
	})
	b.Run("opt-nobucket", func(b *testing.B) {
		hubDef, leafDef := DegreeBuckets()
		SetDegreeBuckets(0, 0)
		defer SetDegreeBuckets(hubDef, leafDef)
		opt(b)
	})
}

func BenchmarkFusedAggSumWide(b *testing.B) { benchFusedForwardWide(b, tensor.ReduceSum) }
func BenchmarkFusedAggMaxWide(b *testing.B) { benchFusedForwardWide(b, tensor.ReduceMax) }

func benchFusedTrainStep(b *testing.B, op tensor.ReduceOp) {
	adj, feats, grad := fusedBenchInputs()
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fv := nn.Param(feats)
			var out *nn.Value
			switch op {
			case tensor.ReduceSum, tensor.ReduceMean:
				out = seedFusedSumMean(adj, fv, op == tensor.ReduceMean)
			case tensor.ReduceMax:
				out = seedFusedMax(adj, fv)
			}
			out.BackwardWith(grad)
		}
	})
	b.Run("opt", func(b *testing.B) {
		ar := &tensor.Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fv := nn.Param(feats)
			out := fusedAggregate(adj, fv, op, true, ar)
			out.BackwardWith(grad)
			tensor.Recycle(fv.Grad)
			ar.Reset()
		}
	})
}

func BenchmarkFusedFwdBwdSum(b *testing.B) { benchFusedTrainStep(b, tensor.ReduceSum) }
func BenchmarkFusedFwdBwdMax(b *testing.B) { benchFusedTrainStep(b, tensor.ReduceMax) }

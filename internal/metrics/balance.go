package metrics

import (
	"fmt"
	"math"
	"strings"
)

// BalanceReport is a per-epoch, per-rank workload-balance table — the
// paper's Fig. 14 comparison made continuous: each worker ships its
// per-stage stage seconds inside the gradient-sync fence, and rank 0
// aggregates them into max/mean skew and coefficient of variation per
// stage, so load imbalance is quantified every epoch instead of guessed
// from a timeout.
type BalanceReport struct {
	// Epoch is the (0-based) epoch the report covers.
	Epoch int
	// Seconds[s][r] is rank r's time in stage s during this epoch.
	Seconds [StageCount][]float64
}

// NewBalanceReport returns an empty report for a cluster of k ranks.
func NewBalanceReport(epoch, k int) *BalanceReport {
	r := &BalanceReport{Epoch: epoch}
	for s := range r.Seconds {
		r.Seconds[s] = make([]float64, k)
	}
	return r
}

// Ranks returns the cluster size the report covers.
func (r *BalanceReport) Ranks() int { return len(r.Seconds[0]) }

// Set records rank's seconds in stage s.
func (r *BalanceReport) Set(s Stage, rank int, secs float64) {
	r.Seconds[s][rank] = secs
}

// Skew returns the stage's balance statistics: the slowest rank's time, the
// mean across ranks, the max/mean ratio (1.0 = perfectly balanced) and the
// coefficient of variation (stddev/mean). A stage nobody spent time in
// returns zeros with ratio 1.
func (r *BalanceReport) Skew(s Stage) (maxSec, meanSec, ratio, cv float64) {
	vals := r.Seconds[s]
	for _, v := range vals {
		meanSec += v
		if v > maxSec {
			maxSec = v
		}
	}
	meanSec /= float64(len(vals))
	if meanSec == 0 {
		return 0, 0, 1, 0
	}
	var variance float64
	for _, v := range vals {
		d := v - meanSec
		variance += d * d
	}
	variance /= float64(len(vals))
	return maxSec, meanSec, maxSec / meanSec, math.Sqrt(variance) / meanSec
}

// String formats the report as a table: one row per stage with per-rank
// seconds, max/mean skew and CV, plus an epoch-total row.
func (r *BalanceReport) String() string {
	k := r.Ranks()
	var sb strings.Builder
	fmt.Fprintf(&sb, "epoch %d per-rank stage seconds (k=%d)\n", r.Epoch, k)
	fmt.Fprintf(&sb, "%-14s", "stage")
	for q := 0; q < k; q++ {
		fmt.Fprintf(&sb, " %9s", fmt.Sprintf("r%d", q))
	}
	fmt.Fprintf(&sb, " %9s %7s\n", "max/mean", "cv")
	totals := make([]float64, k)
	for s := Stage(0); s < Stage(StageCount); s++ {
		_, mean, ratio, cv := r.Skew(s)
		if mean == 0 {
			continue // stage unused by this model
		}
		fmt.Fprintf(&sb, "%-14s", s)
		for q := 0; q < k; q++ {
			fmt.Fprintf(&sb, " %9.4f", r.Seconds[s][q])
			totals[q] += r.Seconds[s][q]
		}
		fmt.Fprintf(&sb, " %9.2f %7.2f\n", ratio, cv)
	}
	fmt.Fprintf(&sb, "%-14s", "total")
	var maxT, meanT float64
	for q := 0; q < k; q++ {
		fmt.Fprintf(&sb, " %9.4f", totals[q])
		meanT += totals[q]
		if totals[q] > maxT {
			maxT = totals[q]
		}
	}
	meanT /= float64(k)
	ratio := 1.0
	if meanT > 0 {
		ratio = maxT / meanT
	}
	fmt.Fprintf(&sb, " %9.2f\n", ratio)
	return sb.String()
}

package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Add(3)
	c.Inc()
	if c.Load() != 4 {
		t.Fatalf("counter = %d", c.Load())
	}
	if r.Counter("a.count") != c {
		t.Fatal("same name must return same counter")
	}
	g := r.Gauge("a.gauge")
	g.Set(1.5)
	if g.Load() != 1.5 {
		t.Fatalf("gauge = %v", g.Load())
	}
	g.Set(-2)
	if g.Load() != -2 {
		t.Fatalf("gauge = %v", g.Load())
	}
}

func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// All no-ops, no panics.
	c.Add(1)
	c.Inc()
	g.Set(3)
	h.Observe(5)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Log buckets: bucket i covers [2^(i-1), 2^i - 1]; bucket 0 holds <= 0.
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11}, {2047, 11}, {2048, 12},
		{1 << 62, 63},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		if got := h.bucketCount(c.bucket); got != 1 {
			t.Fatalf("Observe(%d): bucket %d count = %d, want 1", c.v, c.bucket, got)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.bucket > 0 && (c.v < lo || c.v > hi) {
			t.Fatalf("value %d outside its bucket bounds [%d, %d]", c.v, lo, hi)
		}
	}
	if lo, hi := BucketBounds(11); lo != 1024 || hi != 2047 {
		t.Fatalf("BucketBounds(11) = [%d, %d]", lo, hi)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations of 100 (bucket [64,127]), 10 of 10000 (bucket
	// [8192,16383]): p50 must land in the low bucket, p99 in the high one.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10000)
	}
	if h.Count() != 110 || h.Sum() != 100*100+10*10000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 64 || p50 > 127 {
		t.Fatalf("p50 = %v, want within [64, 127]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8192 || p99 > 16383 {
		t.Fatalf("p99 = %v, want within [8192, 16383]", p99)
	}
	if q0 := h.Quantile(0); q0 < 64 || q0 > 127 {
		t.Fatalf("q0 = %v", q0)
	}
	if q1 := h.Quantile(1); q1 < 8192 || q1 > 16383 {
		t.Fatalf("q1 = %v", q1)
	}
	// Clamping out-of-range q.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
	if mean := h.Mean(); mean < 900 || mean > 1000 {
		t.Fatalf("mean = %v, want ~%v", mean, float64(h.Sum())/110)
	}
}

func TestHistogramEmptyAndZeroBucket(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	h.Observe(0)
	h.Observe(-3)
	if h.Quantile(0.99) != 0 {
		t.Fatalf("all-underflow histogram p99 = %v", h.Quantile(0.99))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const G, N = 8, 1000
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(int64(i + 1))
			}
		}()
	}
	wg.Wait()
	if h.Count() != G*N {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != G*N*(N+1)/2 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestRegistryOutputs(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc.dial_retries.rank0").Add(2)
	r.Gauge("cluster.epoch_loss").Set(0.75)
	h := r.Histogram("collective.fence_wait_ns.rank0")
	h.Observe(1000)
	h.Observe(3000)

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "rpc.dial_retries.rank0", "gauge", "cluster.epoch_loss", "hist", "fence_wait"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Sum   int64   `json:"sum"`
			P50   float64 `json:"p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["rpc.dial_retries.rank0"] != 2 {
		t.Fatalf("json counters = %v", snap.Counters)
	}
	if snap.Gauges["cluster.epoch_loss"] != 0.75 {
		t.Fatalf("json gauges = %v", snap.Gauges)
	}
	hs := snap.Histograms["collective.fence_wait_ns.rank0"]
	if hs.Count != 2 || hs.Sum != 4000 {
		t.Fatalf("json histogram = %+v", hs)
	}
}

func TestBalanceReport(t *testing.T) {
	r := NewBalanceReport(3, 4)
	if r.Ranks() != 4 {
		t.Fatalf("ranks = %d", r.Ranks())
	}
	// Aggregation: one straggler at 4s against three at 2s.
	r.Set(StageAggregation, 0, 2)
	r.Set(StageAggregation, 1, 2)
	r.Set(StageAggregation, 2, 4)
	r.Set(StageAggregation, 3, 2)
	maxSec, meanSec, ratio, cv := r.Skew(StageAggregation)
	if maxSec != 4 || meanSec != 2.5 {
		t.Fatalf("max=%v mean=%v", maxSec, meanSec)
	}
	if ratio != 1.6 {
		t.Fatalf("max/mean = %v, want 1.6", ratio)
	}
	if cv < 0.34 || cv > 0.35 { // stddev = sqrt(0.75) ≈ 0.866; cv ≈ 0.3464
		t.Fatalf("cv = %v, want ~0.346", cv)
	}
	// A perfectly balanced stage reports ratio 1, cv 0.
	for q := 0; q < 4; q++ {
		r.Set(StageUpdate, q, 1)
	}
	if _, _, ratio, cv := r.Skew(StageUpdate); ratio != 1 || cv != 0 {
		t.Fatalf("balanced stage: ratio=%v cv=%v", ratio, cv)
	}
	// An untouched stage reports ratio 1 (not NaN).
	if _, _, ratio, _ := r.Skew(StageBackward); ratio != 1 {
		t.Fatalf("empty stage ratio = %v", ratio)
	}
	out := r.String()
	for _, want := range []string{"epoch 3", "k=4", "Aggregation", "1.60", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Backward") {
		t.Fatalf("unused stage printed:\n%s", out)
	}
}

package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	var b Breakdown
	b.Add(StageAggregation, time.Second)
	b.Add(StageAggregation, time.Second)
	if b.Get(StageAggregation) != 2*time.Second {
		t.Fatalf("Get = %v", b.Get(StageAggregation))
	}
	if b.Get(StageUpdate) != 0 {
		t.Fatal("untouched stage must be zero")
	}
}

func TestTimeMeasures(t *testing.T) {
	var b Breakdown
	b.Time(StageUpdate, func() { time.Sleep(5 * time.Millisecond) })
	if b.Get(StageUpdate) < 4*time.Millisecond {
		t.Fatalf("Time measured %v", b.Get(StageUpdate))
	}
}

func TestTotalsAndNAUTotal(t *testing.T) {
	var b Breakdown
	b.Add(StageNeighborSelection, time.Second)
	b.Add(StageAggregation, 2*time.Second)
	b.Add(StageUpdate, 3*time.Second)
	b.Add(StageBackward, 10*time.Second)
	if b.NAUTotal() != 6*time.Second {
		t.Fatalf("NAUTotal = %v", b.NAUTotal())
	}
	if b.Total() != 16*time.Second {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b Breakdown
	a.Add(StageSync, time.Second)
	a.MessagesSent.Add(3)
	a.BytesSent.Add(100)
	b.Add(StageSync, 2*time.Second)
	b.MessagesSent.Add(1)
	b.Merge(&a)
	if b.Get(StageSync) != 3*time.Second || b.MessagesSent.Load() != 4 || b.BytesSent.Load() != 100 {
		t.Fatalf("merge wrong: %v %d %d", b.Get(StageSync), b.MessagesSent.Load(), b.BytesSent.Load())
	}
	b.Reset()
	if b.Total() != 0 || b.MessagesSent.Load() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTable4Row(t *testing.T) {
	var b Breakdown
	b.Add(StageNeighborSelection, time.Second)
	b.Add(StageAggregation, time.Second)
	b.Add(StageUpdate, 2*time.Second)
	row := b.Table4Row("GCN")
	if !strings.Contains(row, "GCN") || !strings.Contains(row, "25.0%") || !strings.Contains(row, "50.0%") {
		t.Fatalf("Table4Row = %q", row)
	}
	// Zero breakdown must not divide by zero.
	var z Breakdown
	if !strings.Contains(z.Table4Row("x"), "0.0%") {
		t.Fatal("zero breakdown row wrong")
	}
}

func TestStageString(t *testing.T) {
	names := map[Stage]string{
		StageNeighborSelection: "Nbr.Selection",
		StageAggregation:       "Aggregation",
		StageUpdate:            "Update",
		StageBackward:          "Backward",
		StageSync:              "Sync",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestFaultCounters(t *testing.T) {
	var a, b Breakdown
	a.CountAbort()
	a.CountAbort()
	a.CountTimeout()
	if a.Aborts.Load() != 2 || a.Timeouts.Load() != 1 {
		t.Fatalf("counts: aborts=%d timeouts=%d", a.Aborts.Load(), a.Timeouts.Load())
	}
	b.CountTimeout()
	b.Merge(&a)
	if b.Aborts.Load() != 2 || b.Timeouts.Load() != 2 {
		t.Fatalf("merged: aborts=%d timeouts=%d", b.Aborts.Load(), b.Timeouts.Load())
	}
	// The faults line appears only when something actually failed.
	if table := b.TrafficTable(); !strings.Contains(table, "aborts=2") || !strings.Contains(table, "timeouts=2") {
		t.Fatalf("TrafficTable missing faults line:\n%s", table)
	}
	b.Reset()
	if b.Aborts.Load() != 0 || b.Timeouts.Load() != 0 {
		t.Fatal("reset did not clear fault counters")
	}
	if strings.Contains(b.TrafficTable(), "faults") {
		t.Fatal("healthy breakdown must not print a faults line")
	}
}

func TestConcurrentUse(t *testing.T) {
	var b Breakdown
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Add(StageSync, time.Microsecond)
				b.MessagesSent.Add(1)
			}
		}()
	}
	wg.Wait()
	if b.Get(StageSync) != 800*time.Microsecond || b.MessagesSent.Load() != 800 {
		t.Fatalf("concurrent accumulation wrong: %v %d", b.Get(StageSync), b.MessagesSent.Load())
	}
}

func TestTimeRecordsOnPanic(t *testing.T) {
	// A stage that panics (the cluster's runEpoch recovers collective
	// failures that panic out of aggregation hooks) must still contribute
	// its elapsed time to the breakdown.
	var b Breakdown
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the panic to propagate")
			}
		}()
		b.Time(StageAggregation, func() {
			time.Sleep(2 * time.Millisecond)
			panic("collective failure")
		})
	}()
	if b.Get(StageAggregation) < time.Millisecond {
		t.Fatalf("panicked stage recorded %v", b.Get(StageAggregation))
	}
}

func TestStageTimesSnapshot(t *testing.T) {
	var b Breakdown
	b.Add(StageUpdate, 3*time.Second)
	b.Add(StageSync, time.Second)
	times := b.StageTimes()
	if len(times) != StageCount {
		t.Fatalf("StageTimes length %d, want %d", len(times), StageCount)
	}
	if times[StageUpdate] != 3*time.Second || times[StageSync] != time.Second {
		t.Fatalf("snapshot wrong: %v", times)
	}
	// The snapshot is a copy: later mutation must not alter it.
	b.Add(StageUpdate, time.Second)
	if times[StageUpdate] != 3*time.Second {
		t.Fatal("snapshot aliases live state")
	}
}

func TestConcurrentPerClassCounters(t *testing.T) {
	// CountSent/CountRecv per message class racing Merge and Reset must be
	// free of data races (run under -race via the Makefile race target) and
	// must conserve bytes when the races are quiesced.
	var b, sink Breakdown
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sink.Merge(&b)
				sink.Reset()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := MsgClass(g % int(NumMsgClasses))
			for i := 0; i < 500; i++ {
				b.CountSent(class, 10)
				b.CountRecv(class, 20)
			}
		}(g)
	}
	// Only the counting goroutines must finish before the final tally.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Wait for counters: 4 goroutines x 500 sends.
	for b.MessagesSent.Load() < 2000 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if b.BytesSent.Load() != 2000*10 || b.BytesRecv.Load() != 2000*20 {
		t.Fatalf("aggregate bytes wrong: sent=%d recv=%d", b.BytesSent.Load(), b.BytesRecv.Load())
	}
	var perClassSent int64
	for c := MsgClass(0); c < NumMsgClasses; c++ {
		perClassSent += b.SentBytes(c)
	}
	if perClassSent != 2000*10 {
		t.Fatalf("per-class sent bytes %d, want %d", perClassSent, 2000*10)
	}
}

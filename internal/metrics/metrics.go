// Package metrics provides the stage timers and traffic counters used by
// the evaluation harness: per-stage wall-clock breakdowns (the paper's
// Table 4) and message/byte counters for the communication optimisations
// (§5, Fig. 15).
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of a training epoch.
type Stage int

// Stages of a NAU epoch. NeighborSelection, Aggregation and Update are the
// three NAU stages of the paper's Fig. 4; Backward and Sync cover autograd
// and distributed feature synchronisation.
const (
	StageNeighborSelection Stage = iota
	StageAggregation
	StageUpdate
	StageBackward
	StageSync
	numStages
)

// StageCount is the number of stages a Breakdown tracks — the row count of
// per-stage tables (straggler reports, gradient-fence payload slots).
const StageCount = int(numStages)

// String returns the stage name as printed in Table 4.
func (s Stage) String() string {
	switch s {
	case StageNeighborSelection:
		return "Nbr.Selection"
	case StageAggregation:
		return "Aggregation"
	case StageUpdate:
		return "Update"
	case StageBackward:
		return "Backward"
	case StageSync:
		return "Sync"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// MsgClass identifies a message kind for per-kind traffic accounting. The
// values mirror the rpc message kinds (without importing rpc, which sits
// above metrics), so Fig. 15-style reports can split plan, feature, partial
// and gradient bytes.
type MsgClass int

// Traffic classes, one per wire message kind.
const (
	ClassFeatures MsgClass = iota
	ClassPartials
	ClassGrads
	ClassBarrier
	ClassPlan
	ClassAbort
	ClassSample
	ClassTelemetry
	NumMsgClasses
)

// String returns the class name as printed in traffic tables.
func (c MsgClass) String() string {
	switch c {
	case ClassFeatures:
		return "features"
	case ClassPartials:
		return "partials"
	case ClassGrads:
		return "grads"
	case ClassBarrier:
		return "barrier"
	case ClassPlan:
		return "plan"
	case ClassAbort:
		return "abort"
	case ClassSample:
		return "sample"
	case ClassTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Breakdown accumulates per-stage durations and communication counters. It
// is safe for concurrent use.
type Breakdown struct {
	mu    sync.Mutex
	times [numStages]time.Duration

	MessagesSent atomic.Int64
	BytesSent    atomic.Int64
	MessagesRecv atomic.Int64
	BytesRecv    atomic.Int64

	// Aborts counts abort control messages observed (a peer's epoch failed
	// and it told us); Timeouts counts receive deadlines that expired. Both
	// are fail-fast events: a healthy run reports zero for each.
	Aborts   atomic.Int64
	Timeouts atomic.Int64

	sentBy [NumMsgClasses]atomic.Int64
	recvBy [NumMsgClasses]atomic.Int64
}

// CountAbort records one observed abort control message.
func (b *Breakdown) CountAbort() { b.Aborts.Add(1) }

// CountTimeout records one expired receive deadline.
func (b *Breakdown) CountTimeout() { b.Timeouts.Add(1) }

// CountSent records one outgoing message of class c with the given encoded
// size, updating both the aggregate and the per-kind counters.
func (b *Breakdown) CountSent(c MsgClass, bytes int64) {
	b.MessagesSent.Add(1)
	b.BytesSent.Add(bytes)
	if c >= 0 && c < NumMsgClasses {
		b.sentBy[c].Add(bytes)
	}
}

// CountRecv records one incoming message of class c.
func (b *Breakdown) CountRecv(c MsgClass, bytes int64) {
	b.MessagesRecv.Add(1)
	b.BytesRecv.Add(bytes)
	if c >= 0 && c < NumMsgClasses {
		b.recvBy[c].Add(bytes)
	}
}

// SentBytes returns the bytes sent for one message class.
func (b *Breakdown) SentBytes(c MsgClass) int64 { return b.sentBy[c].Load() }

// RecvBytes returns the bytes received for one message class.
func (b *Breakdown) RecvBytes(c MsgClass) int64 { return b.recvBy[c].Load() }

// Add accumulates d into stage s.
func (b *Breakdown) Add(s Stage, d time.Duration) {
	b.mu.Lock()
	b.times[s] += d
	b.mu.Unlock()
}

// Time runs fn and accumulates its duration into stage s. The recording is
// deferred so a stage that panics (e.g. a collective failure recovered by
// the cluster's runEpoch) still contributes its elapsed time to the
// breakdown instead of silently vanishing from Table 4.
func (b *Breakdown) Time(s Stage, fn func()) {
	start := time.Now()
	defer func() { b.Add(s, time.Since(start)) }()
	fn()
}

// StageTimes returns a snapshot of all stage durations, indexed by Stage
// (length StageCount) — the per-epoch delta source for straggler reports.
func (b *Breakdown) StageTimes() [StageCount]time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.times
}

// Get returns the accumulated duration of stage s.
func (b *Breakdown) Get(s Stage) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.times[s]
}

// Total returns the sum over all stages.
func (b *Breakdown) Total() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.times {
		t += d
	}
	return t
}

// NAUTotal returns the sum of the three NAU stages only, the denominator of
// Table 4's percentages.
func (b *Breakdown) NAUTotal() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.times[StageNeighborSelection] + b.times[StageAggregation] + b.times[StageUpdate]
}

// Merge adds other's counters into b.
func (b *Breakdown) Merge(other *Breakdown) {
	other.mu.Lock()
	times := other.times
	other.mu.Unlock()
	b.mu.Lock()
	for i := range b.times {
		b.times[i] += times[i]
	}
	b.mu.Unlock()
	b.MessagesSent.Add(other.MessagesSent.Load())
	b.BytesSent.Add(other.BytesSent.Load())
	b.MessagesRecv.Add(other.MessagesRecv.Load())
	b.BytesRecv.Add(other.BytesRecv.Load())
	b.Aborts.Add(other.Aborts.Load())
	b.Timeouts.Add(other.Timeouts.Load())
	for c := range b.sentBy {
		b.sentBy[c].Add(other.sentBy[c].Load())
		b.recvBy[c].Add(other.recvBy[c].Load())
	}
}

// Reset zeroes all counters.
func (b *Breakdown) Reset() {
	b.mu.Lock()
	for i := range b.times {
		b.times[i] = 0
	}
	b.mu.Unlock()
	b.MessagesSent.Store(0)
	b.BytesSent.Store(0)
	b.MessagesRecv.Store(0)
	b.BytesRecv.Store(0)
	b.Aborts.Store(0)
	b.Timeouts.Store(0)
	for c := range b.sentBy {
		b.sentBy[c].Store(0)
		b.recvBy[c].Store(0)
	}
}

// Table4Row formats the NAU-stage breakdown like the paper's Table 4:
// absolute seconds and percentage of the NAU total per stage.
func (b *Breakdown) Table4Row(model string) string {
	total := b.NAUTotal()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", model)
	for _, s := range []Stage{StageNeighborSelection, StageAggregation, StageUpdate} {
		d := b.Get(s)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(&sb, "  %s %8.3fs (%5.1f%%)", s, d.Seconds(), pct)
	}
	return sb.String()
}

// TrafficTable formats the per-kind byte counters like the paper's Fig. 15
// traffic accounting: one line per message class with sent/received bytes,
// plus the aggregate totals.
func (b *Breakdown) TrafficTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %14s %14s\n", "kind", "sent (B)", "recv (B)")
	for c := MsgClass(0); c < NumMsgClasses; c++ {
		s, r := b.sentBy[c].Load(), b.recvBy[c].Load()
		if s == 0 && r == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-10s %14d %14d\n", c, s, r)
	}
	fmt.Fprintf(&sb, "%-10s %14d %14d  (%d msgs out, %d in)",
		"total", b.BytesSent.Load(), b.BytesRecv.Load(),
		b.MessagesSent.Load(), b.MessagesRecv.Load())
	if aborts, timeouts := b.Aborts.Load(), b.Timeouts.Load(); aborts > 0 || timeouts > 0 {
		fmt.Fprintf(&sb, "\n%-10s aborts=%d timeouts=%d", "faults", aborts, timeouts)
	}
	return sb.String()
}

package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuantileEdgeCases pins the histogram's behavior at the degenerate
// ends a merged cluster registry routinely hits: ranks that never observed
// anything, and ranks that observed exactly once.
func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("empty")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}

	single := r.Histogram("single")
	single.Observe(1000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := single.Quantile(q)
		// One observation lands in the [512, 1024) bucket; every quantile
		// must interpolate inside that bucket, never to 0 or past it.
		if got < 512 || got > 1024 {
			t.Fatalf("single-observation Quantile(%v) = %v, want within its bucket [512, 1024]", q, got)
		}
	}
	if single.Count() != 1 || single.Sum() != 1000 {
		t.Fatalf("single: count=%d sum=%d", single.Count(), single.Sum())
	}
}

// TestMergeDisjointCounters checks the cluster-merge path when ranks
// register per-rank-named series: nothing collides, everything passes
// through, and shared names still add.
func TestMergeDisjointCounters(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("collective.ops.rank0").Add(3)
	a.Counter("shared.total").Add(10)
	b.Counter("collective.ops.rank1").Add(5)
	b.Counter("shared.total").Add(7)
	b.Gauge("epoch_loss.rank1").Set(0.25)

	a.Merge(b)
	if got := a.Counter("collective.ops.rank0").Load(); got != 3 {
		t.Fatalf("rank0 counter = %d, want 3 (must survive merge untouched)", got)
	}
	if got := a.Counter("collective.ops.rank1").Load(); got != 5 {
		t.Fatalf("rank1 counter = %d, want 5 (disjoint series must pass through)", got)
	}
	if got := a.Counter("shared.total").Load(); got != 17 {
		t.Fatalf("shared counter = %d, want 17 (same-name counters add)", got)
	}
	if got := a.Gauge("epoch_loss.rank1").Load(); got != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got)
	}
	// Merge must not mutate the source.
	if got := b.Counter("shared.total").Load(); got != 7 {
		t.Fatalf("source registry mutated: shared.total = %d", got)
	}
}

// TestSnapshotRoundTrip checks the full-fidelity snapshot the telemetry
// plane ships over the wire: raw buckets (not derived quantiles) merge
// exactly, and repeated merges of fresh deltas equal one big registry.
func TestSnapshotRoundTrip(t *testing.T) {
	src := NewRegistry()
	h := src.Histogram("lat")
	for _, v := range []int64{10, 100, 1000, 10000} {
		h.Observe(v)
	}
	src.Counter("c").Add(4)
	src.Gauge("g").Set(2.5)

	dst := NewRegistry()
	dst.MergeSnapshot(src.Snapshot())
	dst.MergeSnapshot(src.Snapshot()) // cumulative snapshots double everything additive

	dh := dst.Histogram("lat")
	if dh.Count() != 8 || dh.Sum() != 2*11110 {
		t.Fatalf("merged histogram count=%d sum=%d, want 8 and %d", dh.Count(), dh.Sum(), 2*11110)
	}
	// Same bucket shape: quantiles of the doubled histogram match the
	// original (doubling every bucket preserves the distribution).
	if src.Histogram("lat").Quantile(0.5) != dh.Quantile(0.5) {
		t.Fatalf("p50 changed across merge: %v != %v", src.Histogram("lat").Quantile(0.5), dh.Quantile(0.5))
	}
	if dst.Counter("c").Load() != 8 {
		t.Fatalf("counter = %d, want 8", dst.Counter("c").Load())
	}
	if dst.Gauge("g").Load() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5 (last-wins)", dst.Gauge("g").Load())
	}
}

// TestExemplarTracksMax checks the exemplar CAS: the retained (value, span)
// pair is the maximum observation, it survives snapshot/merge, and it shows
// up in the text dump so /metrics links the p99 outlier to its span.
func TestExemplarTracksMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req")
	h.ObserveExemplar(100, 0xAAA)
	h.ObserveExemplar(500, 0xBBB)
	h.ObserveExemplar(200, 0xCCC) // smaller: must not displace the max
	v, id := h.Exemplar()
	if v != 500 || id != 0xBBB {
		t.Fatalf("exemplar = (%d, %#x), want (500, 0xbbb)", v, id)
	}

	dst := NewRegistry()
	dst.MergeSnapshot(r.Snapshot())
	if v, id := dst.Histogram("req").Exemplar(); v != 500 || id != 0xBBB {
		t.Fatalf("exemplar lost in snapshot merge: (%d, %#x)", v, id)
	}

	var buf bytes.Buffer
	if err := dst.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ex=500@0xbbb") {
		t.Fatalf("text dump missing exemplar:\n%s", buf.String())
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide store of named counters, gauges and
// histograms. Metrics are created on first access and live for the
// registry's lifetime; all operations are safe for concurrent use.
//
// Like trace.Tracer, the registry has a nil fast path end to end: accessor
// methods on a nil *Registry return nil metrics, and every metric method is
// a no-op on a nil receiver — so instrumented hot paths cost a pointer test
// when observability is off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed (nil on a
// nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing int64. The zero value is ready to
// use; a nil *Counter ignores all updates.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a float64 that can go up and down (current loss, epoch seconds).
// The zero value is ready to use; a nil *Gauge ignores all updates.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// ---------------------------------------------------------------------------
// Histogram

// histBuckets is the number of log buckets: bucket 0 holds values <= 0 and
// bucket i (1..64) holds values v with bits.Len64(v) == i, i.e. the range
// [2^(i-1), 2^i - 1]. Powers of two give ~2x resolution over the full int64
// range with a branch-free index — the classic log-bucket latency histogram.
const histBuckets = 65

// Histogram accumulates int64 observations (latencies in nanoseconds by
// convention) into log-spaced buckets. All methods are lock-free; the zero
// value is ready to use and a nil *Histogram ignores all updates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
	ex      atomic.Pointer[exemplar]
}

// exemplar ties the largest observed value to the trace span that produced
// it — the OpenMetrics idea: a p99 outlier in the latency histogram carries
// the span ID of an actual slow request, so the histogram links back into
// the Perfetto timeline.
type exemplar struct {
	val   int64
	trace uint64
}

// bucketOf returns the bucket index for v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the closed value range [lo, hi] covered by bucket i.
// Bucket 0 is the <= 0 underflow bucket.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return math.MinInt64, 0
	}
	lo = int64(1) << (i - 1)
	if i == 64 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveExemplar records one value and, when traceID is nonzero and v is
// the largest value seen so far, retains (v, traceID) as the histogram's
// exemplar. Lock-free: a CAS loop that only replaces a smaller exemplar.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	h.ObserveExemplarOnly(v, traceID)
}

// Exemplar returns the worst-case observation and its trace span ID (zeros
// when none was recorded).
func (h *Histogram) Exemplar() (v int64, traceID uint64) {
	if h == nil {
		return 0, 0
	}
	if e := h.ex.Load(); e != nil {
		return e.val, e.trace
	}
	return 0, 0
}

// ObserveSince records the nanoseconds elapsed since t0 — the idiom for
// latency sites: defer-free, one time.Now at the start and one here.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the target log bucket. The estimate is exact to within the bucket's
// 2x resolution; with no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			if i == 0 {
				return 0
			}
			lo, hi := BucketBounds(i)
			frac := (target - cum) / n
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
	}
	// Racing observations moved the total; fall back to the top bucket.
	for i := histBuckets - 1; i > 0; i-- {
		if h.buckets[i].Load() > 0 {
			_, hi := BucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}

// bucketCount returns the observation count of bucket i (tests).
func (h *Histogram) bucketCount(i int) int64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// ---------------------------------------------------------------------------
// Export

// histSnapshot is the JSON shape of one histogram.
type histSnapshot struct {
	Count    int64   `json:"count"`
	Sum      int64   `json:"sum"`
	Mean     float64 `json:"mean"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P99      float64 `json:"p99"`
	MaxEst   float64 `json:"max_est"`
	ExVal    int64   `json:"exemplar_value,omitempty"`
	ExTrace  uint64  `json:"exemplar_trace,omitempty"`
	exemplar bool
}

func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
	}
	for i := histBuckets - 1; i > 0; i-- {
		if h.bucketCount(i) > 0 {
			_, hi := BucketBounds(i)
			s.MaxEst = float64(hi)
			break
		}
	}
	if v, tr := h.Exemplar(); tr != 0 {
		s.ExVal, s.ExTrace, s.exemplar = v, tr, true
	}
	return s
}

// registrySnapshot is the JSON shape of a whole registry.
type registrySnapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]histSnapshot `json:"histograms"`
}

func (r *Registry) snapshot() registrySnapshot {
	s := registrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// ---------------------------------------------------------------------------
// Full-fidelity snapshot + merge (the telemetry-plane transfer format)

// HistogramSnapshot is the lossless serialisable form of a Histogram: raw
// bucket counts (trailing zero buckets trimmed) rather than derived
// quantiles, so snapshots from many ranks merge without losing resolution.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets,omitempty"`
	ExVal   int64   `json:"exemplar_value,omitempty"`
	ExTrace uint64  `json:"exemplar_trace,omitempty"`
}

// RegistrySnapshot is the lossless serialisable form of a whole Registry —
// what a rank packs into a KindTelemetry push and what the rank-0 collector
// merges into the cluster-wide view.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state with full bucket
// resolution. Safe to call while observation continues; racing updates may
// or may not be included.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, h := range hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		top := -1
		for i := 0; i < histBuckets; i++ {
			if h.bucketCount(i) != 0 {
				top = i
			}
		}
		if top >= 0 {
			hs.Buckets = make([]int64, top+1)
			for i := 0; i <= top; i++ {
				hs.Buckets[i] = h.bucketCount(i)
			}
		}
		hs.ExVal, hs.ExTrace = h.Exemplar()
		s.Histograms[k] = hs
	}
	return s
}

// MergeSnapshot folds a snapshot into the registry: counters and histogram
// buckets add, gauges overwrite (last write wins — cluster views namespace
// gauges per rank before merging), exemplars keep the larger value. Metrics
// absent on either side — disjoint counter sets from ranks running
// different roles — simply pass through.
func (r *Registry) MergeSnapshot(s RegistrySnapshot) {
	if r == nil {
		return
	}
	for k, v := range s.Counters {
		r.Counter(k).Add(v)
	}
	for k, v := range s.Gauges {
		r.Gauge(k).Set(v)
	}
	for k, hs := range s.Histograms {
		h := r.Histogram(k)
		h.count.Add(hs.Count)
		h.sum.Add(hs.Sum)
		for i, n := range hs.Buckets {
			if i < histBuckets && n != 0 {
				h.buckets[i].Add(n)
			}
		}
		if hs.ExTrace != 0 {
			h.ObserveExemplarOnly(hs.ExVal, hs.ExTrace)
		}
	}
}

// ObserveExemplarOnly updates the exemplar without recording an
// observation — used when merging snapshots whose counts were already
// added.
func (h *Histogram) ObserveExemplarOnly(v int64, traceID uint64) {
	if h == nil || traceID == 0 {
		return
	}
	next := &exemplar{val: v, trace: traceID}
	for {
		cur := h.ex.Load()
		if cur != nil && cur.val >= v {
			return
		}
		if h.ex.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Merge folds another registry's current state into r (counters/buckets
// add, gauges overwrite). The source is snapshotted first, so merging a
// live registry is safe.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	r.MergeSnapshot(o.Snapshot())
}

// WriteJSON writes the registry as one JSON object (the /metrics?format=json
// and expvar payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.snapshot())
}

// WriteText writes the registry in a sorted, line-oriented text form — the
// default /metrics payload, greppable and diffable.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.snapshot()
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "counter %-44s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-44s %g\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		ex := ""
		if h.exemplar {
			ex = fmt.Sprintf(" ex=%d@%#x", h.ExVal, h.ExTrace)
		}
		if _, err := fmt.Fprintf(w, "hist    %-44s count=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f max~%.0f%s\n",
			k, h.Count, h.Mean, h.P50, h.P90, h.P99, h.MaxEst, ex); err != nil {
			return err
		}
	}
	return nil
}

package collective

import (
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/rpc"
)

func TestExchangeTimeoutNamesMissingPeers(t *testing.T) {
	// k=3: peer 1 delivers, peer 2 stays silent. Rank 0's exchange must
	// expire into a typed timeout naming exactly the silent rank.
	netw := rpc.NewLoopbackNetwork(3)
	defer netw.Close()
	bd := &metrics.Breakdown{}
	c0 := New(netw.Transport(0), bd, WithRecvTimeout(100*time.Millisecond))
	if err := netw.Transport(1).Send(0, &rpc.Message{Kind: rpc.KindFeatures, From: 1, Epoch: 0, Layer: 0}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err := c0.Exchange(Fence{Epoch: 0, Phase: 0}, rpc.KindFeatures, func(int) *rpc.Message {
		return &rpc.Message{Kind: rpc.KindFeatures}
	}, nil)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got %v", err)
	}
	if len(te.Missing) != 1 || te.Missing[0] != 2 {
		t.Fatalf("missing peers: got %v, want [2]", te.Missing)
	}
	if te.Kind != rpc.KindFeatures || te.Fence.Epoch != 0 {
		t.Fatalf("timeout fields: %+v", te)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline was 100ms", elapsed)
	}
	if bd.Timeouts.Load() == 0 {
		t.Fatal("timeout not counted in the breakdown")
	}
}

func TestAllReduceTimeout(t *testing.T) {
	// Ring all-reduce with a silent peer: the first ring-step receive must
	// expire into a typed timeout naming that peer.
	netw := rpc.NewLoopbackNetwork(2)
	defer netw.Close()
	c0 := New(netw.Transport(0), &metrics.Breakdown{}, WithRecvTimeout(100*time.Millisecond))
	data := payloadFor(0, 64)
	err := c0.AllReduce(Fence{Epoch: 0}, data, rpc.KindGrads)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got %v", err)
	}
	if len(te.Missing) != 1 || te.Missing[0] != 1 {
		t.Fatalf("missing peers: got %v, want [1]", te.Missing)
	}
}

func TestAbortUnblocksExchangeAndSticks(t *testing.T) {
	// An abort lands while rank 0 is blocked (no deadline configured). The
	// exchange must fail with a typed *AbortError naming the sender, and the
	// abort must be sticky: every later collective fails the same way.
	netw := rpc.NewLoopbackNetwork(2)
	defer netw.Close()
	bd := &metrics.Breakdown{}
	c0 := New(netw.Transport(0), bd)
	c1 := New(netw.Transport(1), &metrics.Breakdown{})

	done := make(chan error, 1)
	go func() {
		_, err := c0.Exchange(Fence{Epoch: 2, Phase: 1}, rpc.KindFeatures, func(int) *rpc.Message {
			return &rpc.Message{Kind: rpc.KindFeatures}
		}, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let rank 0 block in the receive
	c1.Abort(Fence{Epoch: 2, Phase: 1})

	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("exchange still blocked 5s after the abort arrived")
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if ae.From != 1 || ae.Fence.Epoch != 2 || ae.Fence.Phase != 1 {
		t.Fatalf("abort fields: %+v", ae)
	}
	if bd.Aborts.Load() != 1 {
		t.Fatalf("abort count: got %d, want 1", bd.Aborts.Load())
	}
	// Sticky: the next collective fails immediately without touching the wire.
	if err := c0.Barrier(Fence{Epoch: 3}); !errors.As(err, &ae) {
		t.Fatalf("post-abort barrier: want *AbortError, got %v", err)
	}
}

// failingSendTransport wraps a transport so every Send fails while Recv still
// blocks normally — the shape of a worker whose peers' sockets are gone but
// whose own inbox is just silent.
type failingSendTransport struct {
	rpc.Transport
	err error
}

func (f *failingSendTransport) Send(int, *rpc.Message) error { return f.err }

func TestExchangeObservesSendFailureWhileBlocked(t *testing.T) {
	// Regression for the deadlock where Exchange's background sender failed
	// but the receive loop sat in Recv forever. No deadline is configured:
	// the interrupt hook alone must surface the send failure.
	netw := rpc.NewLoopbackNetwork(2)
	defer netw.Close()
	sendErr := errors.New("wire torn")
	c0 := New(&failingSendTransport{Transport: netw.Transport(0), err: sendErr}, &metrics.Breakdown{})

	done := make(chan error, 1)
	go func() {
		_, err := c0.Exchange(Fence{Epoch: 0, Phase: 0}, rpc.KindFeatures, func(int) *rpc.Message {
			return &rpc.Message{Kind: rpc.KindFeatures}
		}, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, sendErr) {
			t.Fatalf("want the send failure, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exchange hung despite its sends failing")
	}
}

func TestExchangeRejectsDuplicateSender(t *testing.T) {
	// Two deliveries of the same (kind, fence) message from one sender —
	// e.g. a duplicating network — must be a typed error, not a silent
	// double-count.
	netw := rpc.NewLoopbackNetwork(3)
	defer netw.Close()
	c0 := New(netw.Transport(0), &metrics.Breakdown{})
	t1 := netw.Transport(1)
	for i := 0; i < 2; i++ {
		if err := t1.Send(0, &rpc.Message{Kind: rpc.KindFeatures, From: 1, Epoch: 0, Layer: 0}); err != nil {
			t.Fatal(err)
		}
	}
	go netw.Transport(1).Recv()
	go netw.Transport(2).Recv()
	_, err := c0.Exchange(Fence{Epoch: 0, Phase: 0}, rpc.KindFeatures, func(int) *rpc.Message {
		return &rpc.Message{Kind: rpc.KindFeatures}
	}, nil)
	var de *DuplicateError
	if !errors.As(err, &de) {
		t.Fatalf("want *DuplicateError, got %v", err)
	}
	if de.From != 1 {
		t.Fatalf("duplicate sender: %+v", de)
	}
}

func TestExchangeSurvivesFaultInjectedDelays(t *testing.T) {
	// A lossy-but-alive network (delays + duplicates, no drops) must not
	// break a barrier: delays reorder nothing per peer, and the duplicate
	// detector only fires within one fence — these dups land across fences.
	const k = 3
	netw := rpc.NewLoopbackNetwork(k)
	defer netw.Close()
	errs := make([]error, k)
	done := make(chan int, k)
	for rank := 0; rank < k; rank++ {
		go func(rank int) {
			tr := rpc.NewFaultTransport(netw.Transport(rank), rpc.FaultConfig{
				Seed: uint64(rank + 1), DelayProb: 0.3, Delay: time.Millisecond,
			})
			c := New(tr, &metrics.Breakdown{}, WithRecvTimeout(10*time.Second))
			for epoch := int32(0); epoch < 5; epoch++ {
				if errs[rank] = c.Barrier(Fence{Epoch: epoch}); errs[rank] != nil {
					break
				}
			}
			done <- rank
		}(rank)
	}
	for i := 0; i < k; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("barrier sequence hung under fault injection")
		}
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

package collective

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// FenceError reports a message that can never be consumed: its epoch
// precedes the fence of the collective currently receiving. Under the
// synchronous epoch protocol such a message indicates a peer protocol bug
// (or frame corruption), so the mailbox surfaces it instead of buffering it
// unboundedly the way the old worker demultiplexer did.
type FenceError struct {
	From      int32
	Kind      rpc.MsgKind
	MsgEpoch  int32
	WantEpoch int32
}

func (e *FenceError) Error() string {
	return fmt.Sprintf("collective: stale %s message from worker %d: epoch %d behind fence %d",
		e.Kind, e.From, e.MsgEpoch, e.WantEpoch)
}

// OverflowError reports that the out-of-phase buffer hit its bound — the
// cluster has diverged (e.g. a peer racing several epochs ahead), and
// buffering further would only defer the failure.
type OverflowError struct {
	Limit int
	Kind  rpc.MsgKind
	From  int32
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("collective: mailbox overflow (%d buffered) while holding %s message from worker %d",
		e.Limit, e.Kind, e.From)
}

// TimeoutError reports a collective receive whose deadline expired before
// every expected peer delivered. Missing names the ranks never heard from at
// this fence — the dead or wedged workers to go look at.
type TimeoutError struct {
	Fence   Fence
	Kind    rpc.MsgKind
	Timeout time.Duration
	Missing []int
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("collective: %s receive at fence (epoch %d, phase %d) timed out after %v waiting on workers %v",
		e.Kind, e.Fence.Epoch, e.Fence.Phase, e.Timeout, e.Missing)
}

// AbortError reports that a peer broadcast an abort: its epoch failed and
// the cluster is tearing down. The fence identifies where the sender failed.
// Once observed, the abort is sticky — every later collective on this Comm
// fails with the same error immediately.
type AbortError struct {
	From  int32
	Fence Fence
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("collective: worker %d aborted at fence (epoch %d, phase %d)",
		e.From, e.Fence.Epoch, e.Fence.Phase)
}

// DuplicateError reports two messages from the same sender at the same
// (kind, fence) — a protocol violation (or a duplicating network) that would
// otherwise silently double-count a peer's contribution.
type DuplicateError struct {
	From  int32
	Kind  rpc.MsgKind
	Fence Fence
}

func (e *DuplicateError) Error() string {
	return fmt.Sprintf("collective: duplicate %s message from worker %d at fence (epoch %d, phase %d)",
		e.Kind, e.From, e.Fence.Epoch, e.Fence.Phase)
}

// errDeadline is the mailbox-internal deadline signal; receive loops wrap it
// into a *TimeoutError naming the fence and the missing peers.
var errDeadline = errors.New("collective: receive deadline expired")

// pollTick bounds how long a blocked receive goes without re-checking its
// deadline and its interrupt hook (send failures, aborts racing in). Message
// arrival wakes the transport immediately; the tick only paces idle waits.
const pollTick = 5 * time.Millisecond

// mailbox demultiplexes a transport's in-order message stream into the
// (kind, fence)-matched deliveries collectives need. Messages ahead of the
// current receive (later layers of the same epoch, or the next epoch a fast
// peer already entered) are buffered up to limit; messages behind the fence
// epoch are rejected with a typed *FenceError; abort control messages become
// a sticky *AbortError. It is confined to the worker's epoch goroutine — no
// locking.
type mailbox struct {
	tr      rpc.Transport
	bd      *metrics.Breakdown
	pending []*rpc.Message
	limit   int
	aborted *AbortError
	tracer  *trace.Tracer
}

// take returns the first message satisfying match, preferring buffered
// messages (in arrival order) and then the live transport stream.
// fenceEpoch is the epoch of the collective performing the receive.
//
// deadline bounds the wait (zero = no bound; expiry returns errDeadline for
// the caller to wrap). interrupt, when non-nil, is polled while blocked and
// its error returned — the hook Exchange uses to observe background send
// failures without sitting in Recv forever. match may reject the stream with
// an error (duplicate senders).
func (mb *mailbox) take(fenceEpoch int32, deadline time.Time, interrupt func() error, match func(*rpc.Message) (bool, error)) (*rpc.Message, error) {
	if mb.aborted != nil {
		return nil, mb.aborted
	}
	for i, m := range mb.pending {
		ok, err := match(m)
		if err != nil {
			return nil, err
		}
		if ok {
			mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
			return m, nil
		}
	}
	for {
		if interrupt != nil {
			if err := interrupt(); err != nil {
				return nil, err
			}
		}
		var (
			m   *rpc.Message
			err error
		)
		if deadline.IsZero() && interrupt == nil {
			m, err = mb.tr.Recv()
		} else {
			wait := pollTick
			if !deadline.IsZero() {
				remaining := time.Until(deadline)
				if remaining <= 0 {
					mb.bd.CountTimeout()
					return nil, errDeadline
				}
				if remaining < wait {
					wait = remaining
				}
			}
			m, err = mb.tr.RecvTimeout(wait)
			if errors.Is(err, rpc.ErrRecvTimeout) {
				continue
			}
		}
		if err != nil {
			return nil, err
		}
		mb.bd.CountRecv(classOf(m.Kind), m.NumBytes())
		if m.Kind == rpc.KindAbort {
			mb.aborted = &AbortError{From: m.From, Fence: Fence{Epoch: m.Epoch, Phase: m.Layer}}
			mb.bd.CountAbort()
			// Instant span parented to the aborter's broadcast span: the
			// merged timeline shows which rank initiated teardown and when
			// each survivor heard about it.
			mb.tracer.BeginChild(int32(mb.tr.Rank()), m.Epoch, m.Layer,
				trace.CatComm, "abort-recv", m.Trace).End()
			return nil, mb.aborted
		}
		if m.Epoch < fenceEpoch {
			return nil, &FenceError{From: m.From, Kind: m.Kind, MsgEpoch: m.Epoch, WantEpoch: fenceEpoch}
		}
		ok, merr := match(m)
		if merr != nil {
			return nil, merr
		}
		if ok {
			return m, nil
		}
		if len(mb.pending) >= mb.limit {
			return nil, &OverflowError{Limit: mb.limit, Kind: m.Kind, From: m.From}
		}
		mb.pending = append(mb.pending, m)
	}
}

// recvN collects exactly n messages matching (kind, fence), at most one per
// sender. A deadline expiry is wrapped into a *TimeoutError naming the ranks
// never heard from; interrupt is polled while blocked (see take).
func (mb *mailbox) recvN(kind rpc.MsgKind, f Fence, n int, timeout time.Duration, interrupt func() error) ([]*rpc.Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	seen := make(map[int32]bool, n)
	out := make([]*rpc.Message, 0, n)
	for len(out) < n {
		m, err := mb.take(f.Epoch, deadline, interrupt, func(m *rpc.Message) (bool, error) {
			if m.Kind != kind || m.Epoch != f.Epoch || m.Layer != f.Phase {
				return false, nil
			}
			if seen[m.From] {
				return false, &DuplicateError{From: m.From, Kind: kind, Fence: f}
			}
			return true, nil
		})
		if errors.Is(err, errDeadline) {
			return nil, &TimeoutError{Fence: f, Kind: kind, Timeout: timeout, Missing: mb.missingPeers(seen)}
		}
		if err != nil {
			return nil, err
		}
		seen[m.From] = true
		out = append(out, m)
	}
	return out, nil
}

// missingPeers lists the ranks (excluding self) not present in seen, in
// rank order — the peers a timed-out collective is still waiting on.
func (mb *mailbox) missingPeers(seen map[int32]bool) []int {
	var missing []int
	for q := 0; q < mb.tr.Size(); q++ {
		if q == mb.tr.Rank() || seen[int32(q)] {
			continue
		}
		missing = append(missing, q)
	}
	sort.Ints(missing)
	return missing
}

// recvFrom collects the single (kind, fence) message sent by one peer —
// the point-to-point receive of the ring steps.
func (mb *mailbox) recvFrom(kind rpc.MsgKind, f Fence, from int, timeout time.Duration) (*rpc.Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	m, err := mb.take(f.Epoch, deadline, nil, func(m *rpc.Message) (bool, error) {
		return m.Kind == kind && m.Epoch == f.Epoch && m.Layer == f.Phase && int(m.From) == from, nil
	})
	if errors.Is(err, errDeadline) {
		return nil, &TimeoutError{Fence: f, Kind: kind, Timeout: timeout, Missing: []int{from}}
	}
	return m, err
}

package collective

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/rpc"
)

// FenceError reports a message that can never be consumed: its epoch
// precedes the fence of the collective currently receiving. Under the
// synchronous epoch protocol such a message indicates a peer protocol bug
// (or frame corruption), so the mailbox surfaces it instead of buffering it
// unboundedly the way the old worker demultiplexer did.
type FenceError struct {
	From      int32
	Kind      rpc.MsgKind
	MsgEpoch  int32
	WantEpoch int32
}

func (e *FenceError) Error() string {
	return fmt.Sprintf("collective: stale %s message from worker %d: epoch %d behind fence %d",
		e.Kind, e.From, e.MsgEpoch, e.WantEpoch)
}

// OverflowError reports that the out-of-phase buffer hit its bound — the
// cluster has diverged (e.g. a peer racing several epochs ahead), and
// buffering further would only defer the failure.
type OverflowError struct {
	Limit int
	Kind  rpc.MsgKind
	From  int32
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("collective: mailbox overflow (%d buffered) while holding %s message from worker %d",
		e.Limit, e.Kind, e.From)
}

// mailbox demultiplexes a transport's in-order message stream into the
// (kind, fence)-matched deliveries collectives need. Messages ahead of the
// current receive (later layers of the same epoch, or the next epoch a fast
// peer already entered) are buffered up to limit; messages behind the fence
// epoch are rejected with a typed *FenceError. It is confined to the
// worker's epoch goroutine — no locking.
type mailbox struct {
	tr      rpc.Transport
	bd      *metrics.Breakdown
	pending []*rpc.Message
	limit   int
}

// take returns the first message satisfying match, preferring buffered
// messages (in arrival order) and then the live transport stream.
// fenceEpoch is the epoch of the collective performing the receive.
func (mb *mailbox) take(fenceEpoch int32, match func(*rpc.Message) bool) (*rpc.Message, error) {
	for i, m := range mb.pending {
		if match(m) {
			mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
			return m, nil
		}
	}
	for {
		m, err := mb.tr.Recv()
		if err != nil {
			return nil, err
		}
		mb.bd.CountRecv(classOf(m.Kind), m.NumBytes())
		if m.Epoch < fenceEpoch {
			return nil, &FenceError{From: m.From, Kind: m.Kind, MsgEpoch: m.Epoch, WantEpoch: fenceEpoch}
		}
		if match(m) {
			return m, nil
		}
		if len(mb.pending) >= mb.limit {
			return nil, &OverflowError{Limit: mb.limit, Kind: m.Kind, From: m.From}
		}
		mb.pending = append(mb.pending, m)
	}
}

// recvN collects exactly n messages matching (kind, fence).
func (mb *mailbox) recvN(kind rpc.MsgKind, f Fence, n int) ([]*rpc.Message, error) {
	out := make([]*rpc.Message, 0, n)
	for len(out) < n {
		m, err := mb.take(f.Epoch, func(m *rpc.Message) bool {
			return m.Kind == kind && m.Epoch == f.Epoch && m.Layer == f.Phase
		})
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// recvFrom collects the single (kind, fence) message sent by one peer —
// the point-to-point receive of the ring steps.
func (mb *mailbox) recvFrom(kind rpc.MsgKind, f Fence, from int) (*rpc.Message, error) {
	return mb.take(f.Epoch, func(m *rpc.Message) bool {
		return m.Kind == kind && m.Epoch == f.Epoch && m.Layer == f.Phase && int(m.From) == from
	})
}

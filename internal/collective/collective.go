// Package collective is FlexGraph-Go's typed collective-communication
// plane: epoch/layer-fenced collectives over an rpc.Transport. It factors
// the patterns the distributed runtime (§5) is built from out of the worker
// loop into a first-class, testable subsystem:
//
//   - Exchange — the per-peer scatter/gather behind partial-aggregation
//     tasks, raw-feature synchronisation and plan exchange, with optional
//     compute overlap while messages are in flight (pipeline processing);
//   - AllReduce — a chunked ring all-reduce for gradient synchronisation
//     that ships at most 2·|payload| bytes per worker regardless of the
//     cluster size k (the broadcast it replaces ships (k−1)·|payload|);
//   - Barrier — a plain phase fence.
//
// Every collective is tagged with a Fence (epoch, phase). A fenced mailbox
// demultiplexes the transport stream: messages ahead of the current receive
// are buffered (bounded), messages behind the fence epoch are a typed
// *FenceError. All traffic is counted per message kind into a
// metrics.Breakdown, so Fig. 15-style accounting can split plan, feature,
// partial and gradient bytes.
package collective

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// Fence identifies one synchronisation phase: the training epoch plus a
// phase-local tag (the aggregation-call index for feature sync and plan
// exchange; ring steps derive their own tags). Two collectives of the same
// message kind must never share a fence within an epoch.
type Fence struct {
	Epoch int32
	Phase int32
}

// Comm provides fenced collectives for one worker of a cluster. It is not
// safe for concurrent collective calls — like an MPI communicator, one
// collective at a time, in the same order on every worker.
type Comm struct {
	tr          rpc.Transport
	bd          *metrics.Breakdown
	mb          *mailbox
	ringChunk   int
	recvTimeout time.Duration

	// tracer records fence-wait and all-reduce spans (nil = off).
	tracer *trace.Tracer
	// fenceWait observes nanoseconds blocked waiting for peers at each
	// collective fence — the per-rank straggler-wait histogram (nil = off).
	fenceWait *metrics.Histogram
	// ops counts collective operations started on this Comm (nil = off).
	ops *metrics.Counter
}

// DefaultRingChunk is the ring all-reduce segment size in float32 words
// (64 KiB frames): small enough to pipeline the reduce and distribute
// phases, large enough to amortise frame headers.
const DefaultRingChunk = 16384

// defaultPendingLimit bounds the out-of-phase mailbox buffer. A healthy
// synchronous cluster keeps at most a few messages in flight per peer; the
// bound exists to turn a diverged cluster into an error instead of
// unbounded memory growth.
const defaultPendingLimit = 1 << 16

// Option configures a Comm.
type Option func(*Comm)

// WithRingChunk sets the all-reduce segment size in float32 words.
func WithRingChunk(words int) Option {
	return func(c *Comm) {
		if words > 0 {
			c.ringChunk = words
		}
	}
}

// WithPendingLimit bounds the mailbox's out-of-phase buffer.
func WithPendingLimit(n int) Option {
	return func(c *Comm) {
		if n > 0 {
			c.mb.limit = n
		}
	}
}

// WithRecvTimeout bounds how long a collective receive waits for its peers
// (0, the default, waits forever). On expiry the collective fails with a
// typed *TimeoutError naming the fence and the missing ranks instead of
// hanging on a dead or wedged peer. Exchange and Barrier apply the bound to
// the whole fence; the ring all-reduce applies it per ring step, so the
// clock resets on progress.
func WithRecvTimeout(d time.Duration) Option {
	return func(c *Comm) {
		if d > 0 {
			c.recvTimeout = d
		}
	}
}

// WithTracer records a span for every collective fence wait (category
// trace.CatFence) and all-reduce (trace.CatComm) into t, stamps each
// outgoing frame with the operation's span ID, and links received frames'
// span IDs back into the local span — the cross-rank causal edges of the
// merged Perfetto timeline. A nil tracer leaves tracing off.
func WithTracer(t *trace.Tracer) Option {
	return func(c *Comm) {
		c.tracer = t
		c.mb.tracer = t
	}
}

// WithMetrics registers this communicator's hot-path instruments on r: the
// per-rank fence-wait histogram "collective.fence_wait_ns.rank<i>" (time
// blocked waiting for peers — the straggler wait) and the operation counter
// "collective.ops.rank<i>". A nil registry leaves metrics off.
func WithMetrics(r *metrics.Registry) Option {
	return func(c *Comm) {
		if r == nil {
			return
		}
		rank := c.tr.Rank()
		c.fenceWait = r.Histogram(fmt.Sprintf("collective.fence_wait_ns.rank%d", rank))
		c.ops = r.Counter(fmt.Sprintf("collective.ops.rank%d", rank))
	}
}

// New wraps a transport into a collective communicator. All sent and
// received bytes are accounted per message kind into bd.
func New(tr rpc.Transport, bd *metrics.Breakdown, opts ...Option) *Comm {
	c := &Comm{
		tr:        tr,
		bd:        bd,
		mb:        &mailbox{tr: tr, bd: bd, limit: defaultPendingLimit},
		ringChunk: DefaultRingChunk,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Rank returns this worker's index.
func (c *Comm) Rank() int { return c.tr.Rank() }

// Size returns the cluster size k.
func (c *Comm) Size() int { return c.tr.Size() }

// classOf maps a wire kind to its traffic-accounting class.
func classOf(k rpc.MsgKind) metrics.MsgClass {
	switch k {
	case rpc.KindFeatures:
		return metrics.ClassFeatures
	case rpc.KindPartials:
		return metrics.ClassPartials
	case rpc.KindGrads:
		return metrics.ClassGrads
	case rpc.KindBarrier:
		return metrics.ClassBarrier
	case rpc.KindPlan:
		return metrics.ClassPlan
	case rpc.KindAbort:
		return metrics.ClassAbort
	case rpc.KindSample:
		return metrics.ClassSample
	case rpc.KindTelemetry:
		return metrics.ClassTelemetry
	default:
		return -1
	}
}

// send stamps the fence onto m and ships it, counting traffic.
func (c *Comm) send(to int, f Fence, m *rpc.Message) error {
	m.From = int32(c.tr.Rank())
	m.Epoch = f.Epoch
	m.Layer = f.Phase
	c.bd.CountSent(classOf(m.Kind), m.NumBytes())
	return c.tr.Send(to, m)
}

// Exchange is the per-peer scatter/gather: build(q) produces the message
// for peer q (the Comm stamps sender and fence), sends run in the
// background, and one message of recvKind at fence f is collected from
// every peer. If overlap is non-nil it runs on the calling goroutine while
// messages are in flight — the §5 pipeline-processing hook. Peers may send
// different kinds than they receive (partials vs raw features are
// negotiated per direction at plan exchange); recvKind names what THIS
// worker expects.
func (c *Comm) Exchange(f Fence, recvKind rpc.MsgKind, build func(peer int) *rpc.Message, overlap func()) ([]*rpc.Message, error) {
	k, rank := c.tr.Size(), c.tr.Rank()
	if k == 1 {
		if overlap != nil {
			overlap()
		}
		return nil, nil
	}
	// The fence span opens before the sends so its ID can be stamped onto
	// every outgoing frame — the receiver's matching span links back to it,
	// which is what joins the k per-rank timelines into one causal tree.
	// The fence-wait histogram still measures only the blocked receive.
	c.ops.Inc()
	var span trace.Region
	if c.tracer != nil {
		span = c.tracer.Begin(int32(rank), f.Epoch, f.Phase, trace.CatFence, recvKind.String())
	}
	spanID := span.ID()
	// Sends run in the background; a failed send is stored where the
	// receive loop's interrupt hook can see it, so a worker whose peers are
	// gone fails fast instead of sitting in recvN waiting for messages that
	// will never arrive.
	var sendFailed atomic.Pointer[error]
	sendDone := make(chan error, 1)
	go func() {
		var errs []error
		for q := 0; q < k; q++ {
			if q == rank {
				continue
			}
			m := build(q)
			m.Trace = spanID
			if err := c.send(q, f, m); err != nil {
				errs = append(errs, err)
			}
		}
		err := errors.Join(errs...)
		if err != nil {
			sendFailed.Store(&err)
		}
		sendDone <- err
	}()
	if overlap != nil {
		overlap()
	}
	interrupt := func() error {
		if perr := sendFailed.Load(); perr != nil {
			return *perr
		}
		return nil
	}
	// The fence wait — time blocked until every peer delivers — is the
	// straggler signal: it becomes a per-rank span and a histogram sample.
	var waitStart time.Time
	if c.fenceWait != nil {
		waitStart = time.Now()
	}
	msgs, recvErr := c.mb.recvN(recvKind, f, k-1, c.recvTimeout, interrupt)
	if c.fenceWait != nil {
		c.fenceWait.ObserveSince(waitStart)
	}
	for _, m := range msgs {
		span.Link(m.Trace)
	}
	span.End()
	if recvErr != nil {
		// Do not wait for the sender goroutine: with a dead peer it may be
		// blocked in a write that only transport teardown can unblock.
		return nil, recvErr
	}
	if err := <-sendDone; err != nil {
		return nil, err
	}
	// Return in sender-rank order, not arrival order: callers fold the
	// messages into float accumulations, and a deterministic order keeps
	// every worker's results bit-reproducible across runs and cluster
	// timings.
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
	return msgs, recvErr
}

// Barrier blocks until every worker has entered the same fence.
func (c *Comm) Barrier(f Fence) error {
	_, err := c.Exchange(f, rpc.KindBarrier, func(int) *rpc.Message {
		return &rpc.Message{Kind: rpc.KindBarrier}
	}, nil)
	return err
}

// Abort broadcasts a fail-fast control message to every peer: this worker's
// epoch failed at fence f and the cluster must tear down. Sends are
// best-effort — peers that are already gone are skipped — and the abort is
// recorded locally so every later collective on this Comm fails immediately
// with a typed *AbortError instead of waiting on a cluster that no longer
// exists.
func (c *Comm) Abort(f Fence) {
	k, rank := c.tr.Size(), c.tr.Rank()
	if c.mb.aborted == nil {
		c.mb.aborted = &AbortError{From: int32(rank), Fence: f}
	}
	// The abort broadcast carries its span ID so every survivor's
	// "abort-recv" span parents back to the worker that initiated teardown —
	// a crash's blast radius reads straight off the merged timeline.
	span := c.tracer.Begin(int32(rank), f.Epoch, f.Phase, trace.CatComm, "abort")
	id := span.ID()
	for q := 0; q < k; q++ {
		if q == rank {
			continue
		}
		// Best-effort: a dead peer's send failure must not stop the
		// broadcast to the survivors.
		_ = c.send(q, f, &rpc.Message{Kind: rpc.KindAbort, Trace: id})
	}
	span.End()
}

// SendTo ships one fenced message point-to-point (the telemetry plane's
// clock-sync and snapshot-push primitive). The Comm stamps sender and
// fence; the caller owns kind, payload and the Trace span ID.
func (c *Comm) SendTo(to int, f Fence, m *rpc.Message) error {
	return c.send(to, f, m)
}

// RecvFrom receives the single message of the given kind at fence f from
// one peer, honouring the Comm's receive timeout.
func (c *Comm) RecvFrom(from int, f Fence, kind rpc.MsgKind) (*rpc.Message, error) {
	return c.mb.recvFrom(kind, f, from, c.recvTimeout)
}

// Gather collects one message of the given kind at fence f from every peer
// on root (returned in sender-rank order); every other rank contributes m
// (its Kind is forced to kind) and returns nil messages. Like all
// collectives, every rank must call it at the same fence.
func (c *Comm) Gather(f Fence, kind rpc.MsgKind, root int, m *rpc.Message) ([]*rpc.Message, error) {
	c.ops.Inc()
	if c.tr.Rank() != root {
		m.Kind = kind
		return nil, c.send(root, f, m)
	}
	msgs, err := c.mb.recvN(kind, f, c.tr.Size()-1, c.recvTimeout, nil)
	if err != nil {
		return nil, err
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
	return msgs, nil
}

// DrainKind collects messages of one kind that are already buffered or
// arrive within wait, ignoring fences and the sticky abort state — the
// teardown-time receive the rank-0 collector uses to pick up
// flight-recorder dumps from survivors after the cluster has failed. All
// errors (including a closed transport) end the drain silently; messages of
// other kinds arriving during the drain are dropped, since the cluster is
// past the point of consuming them.
func (c *Comm) DrainKind(kind rpc.MsgKind, wait time.Duration) []*rpc.Message {
	var out []*rpc.Message
	rest := c.mb.pending[:0]
	for _, m := range c.mb.pending {
		if m.Kind == kind {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	c.mb.pending = rest
	deadline := time.Now().Add(wait)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		m, err := c.tr.RecvTimeout(remaining)
		if err != nil {
			break
		}
		c.bd.CountRecv(classOf(m.Kind), m.NumBytes())
		if m.Kind == kind {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

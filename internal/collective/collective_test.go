package collective

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rpc"
)

// payloadFor builds a deterministic per-rank payload with values spread
// over several magnitudes so summation-order bugs show up bitwise.
func payloadFor(rank, n int) []float32 {
	out := make([]float32, n)
	state := uint64(rank)*0x9e3779b97f4a7c15 + 1
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = float32(int64(state>>40)-(int64(1)<<23)) / float32(int64(1)<<(state%20))
	}
	return out
}

// referenceSum is the canonical rank-ordered sum (((x0+x1)+x2)+…) both
// all-reduce algorithms must reproduce bit-for-bit.
func referenceSum(payloads [][]float32) []float32 {
	out := append([]float32(nil), payloads[0]...)
	for r := 1; r < len(payloads); r++ {
		for i, v := range payloads[r] {
			out[i] += v
		}
	}
	return out
}

// runAllReduce executes fn on k loopback-connected Comms concurrently and
// returns each rank's resulting payload.
func runAllReduce(t *testing.T, k, n int, opts []Option, fn func(c *Comm, data []float32) error) [][]float32 {
	t.Helper()
	netw := rpc.NewLoopbackNetwork(k)
	defer netw.Close()
	results := make([][]float32, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for rank := 0; rank < k; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := New(netw.Transport(rank), &metrics.Breakdown{}, opts...)
			data := payloadFor(rank, n)
			errs[rank] = fn(c, data)
			results[rank] = data
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return results
}

func TestRingAllReduceMatchesReference(t *testing.T) {
	const n = 1000
	for _, k := range []int{2, 3, 5} {
		// Chunk of 64 words forces multi-chunk pipelining (16 chunks).
		got := runAllReduce(t, k, n, []Option{WithRingChunk(64)}, func(c *Comm, data []float32) error {
			return c.AllReduce(Fence{Epoch: 3, Phase: 0}, data, rpc.KindGrads)
		})
		payloads := make([][]float32, k)
		for r := range payloads {
			payloads[r] = payloadFor(r, n)
		}
		want := referenceSum(payloads)
		for r := 0; r < k; r++ {
			for i := range want {
				if got[r][i] != want[i] {
					t.Fatalf("k=%d rank=%d word %d: got %x, want %x", k, r, i, got[r][i], want[i])
				}
			}
		}
	}
}

func TestBroadcastAllReduceBitIdenticalToRing(t *testing.T) {
	const n = 777 // odd length exercises the ragged final chunk
	for _, k := range []int{2, 4} {
		ring := runAllReduce(t, k, n, []Option{WithRingChunk(100)}, func(c *Comm, data []float32) error {
			return c.AllReduce(Fence{Epoch: 1}, data, rpc.KindGrads)
		})
		bcast := runAllReduce(t, k, n, nil, func(c *Comm, data []float32) error {
			return c.AllReduceBroadcast(Fence{Epoch: 1}, data, rpc.KindGrads)
		})
		for r := 0; r < k; r++ {
			for i := 0; i < n; i++ {
				if ring[r][i] != bcast[r][i] {
					t.Fatalf("k=%d rank=%d word %d: ring %x != broadcast %x", k, r, i, ring[r][i], bcast[r][i])
				}
			}
		}
	}
}

func TestRingAllReduceOverTCP(t *testing.T) {
	const k, n = 3, 500
	// Bring up the mesh on ephemeral ports (lower ranks dial higher ones,
	// so later transports resolve earlier addresses).
	addrs := make([]string, k)
	trans := make([]*rpc.TCPTransport, k)
	for i := k - 1; i >= 0; i-- {
		full := make([]string, k)
		copy(full, addrs)
		full[i] = "127.0.0.1:0"
		for j := 0; j < i; j++ {
			full[j] = "unused"
		}
		tt, err := rpc.NewTCPTransport(i, full)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = tt.Addr()
		trans[i] = tt
		defer tt.Close()
	}
	results := make([][]float32, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for rank := 0; rank < k; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if errs[rank] = trans[rank].Connect(); errs[rank] != nil {
				return
			}
			c := New(trans[rank], &metrics.Breakdown{}, WithRingChunk(64))
			data := payloadFor(rank, n)
			errs[rank] = c.AllReduce(Fence{Epoch: 0}, data, rpc.KindGrads)
			results[rank] = data
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	payloads := make([][]float32, k)
	for r := range payloads {
		payloads[r] = payloadFor(r, n)
	}
	want := referenceSum(payloads)
	for r := 0; r < k; r++ {
		for i := range want {
			if results[r][i] != want[i] {
				t.Fatalf("rank %d word %d: got %x, want %x", r, i, results[r][i], want[i])
			}
		}
	}
}

func TestRingAllReduceByteBound(t *testing.T) {
	const n = 4096
	for _, k := range []int{2, 4, 8} {
		netw := rpc.NewLoopbackNetwork(k)
		bds := make([]*metrics.Breakdown, k)
		var wg sync.WaitGroup
		for rank := 0; rank < k; rank++ {
			bds[rank] = &metrics.Breakdown{}
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c := New(netw.Transport(rank), bds[rank], WithRingChunk(256))
				data := payloadFor(rank, n)
				if err := c.AllReduce(Fence{Epoch: 0}, data, rpc.KindGrads); err != nil {
					t.Errorf("rank %d: %v", rank, err)
				}
			}(rank)
		}
		wg.Wait()
		netw.Close()
		// ≤ 2·|payload| + per-frame headers, independent of k. The header
		// size is derived from an empty message so the bound tracks wire
		// format changes (e.g. the 8-byte trace ID).
		const chunks = (n + 255) / 256
		headerBytes := (&rpc.Message{}).NumBytes()
		bound := int64(2*4*n) + 2*chunks*headerBytes
		for rank := 0; rank < k; rank++ {
			if got := bds[rank].SentBytes(metrics.ClassGrads); got > bound {
				t.Fatalf("k=%d rank=%d sent %d gradient bytes, bound %d", k, rank, got, bound)
			}
		}
	}
}

func TestExchangeOutOfPhaseSenders(t *testing.T) {
	// Worker 1 races ahead: it sends its phase-1 message before worker 0
	// has consumed phase 0. The mailbox must buffer the future message and
	// deliver both phases in fence order.
	netw := rpc.NewLoopbackNetwork(2)
	defer netw.Close()
	c0 := New(netw.Transport(0), &metrics.Breakdown{})
	t1 := netw.Transport(1)

	for _, phase := range []int32{1, 0} { // deliberately reversed
		if err := t1.Send(0, &rpc.Message{Kind: rpc.KindFeatures, From: 1, Epoch: 0, Layer: phase, IDs: []int32{phase}}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		// Worker 1 participates in both exchanges (recv side).
		for phase := int32(0); phase < 2; phase++ {
			if _, err := t1.Recv(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for phase := int32(0); phase < 2; phase++ {
		msgs, err := c0.Exchange(Fence{Epoch: 0, Phase: phase}, rpc.KindFeatures, func(int) *rpc.Message {
			return &rpc.Message{Kind: rpc.KindFeatures}
		}, nil)
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		if len(msgs) != 1 || msgs[0].IDs[0] != phase {
			t.Fatalf("phase %d: got %+v", phase, msgs)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMailboxRejectsStaleEpoch(t *testing.T) {
	netw := rpc.NewLoopbackNetwork(2)
	defer netw.Close()
	c0 := New(netw.Transport(0), &metrics.Breakdown{})
	t1 := netw.Transport(1)

	if err := t1.Send(0, &rpc.Message{Kind: rpc.KindFeatures, From: 1, Epoch: 2, Layer: 0}); err != nil {
		t.Fatal(err)
	}
	go t1.Recv() // absorb worker 0's send so Exchange can't block there
	_, err := c0.Exchange(Fence{Epoch: 5, Phase: 0}, rpc.KindFeatures, func(int) *rpc.Message {
		return &rpc.Message{Kind: rpc.KindFeatures}
	}, nil)
	var fe *FenceError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FenceError, got %v", err)
	}
	if fe.MsgEpoch != 2 || fe.WantEpoch != 5 || fe.From != 1 {
		t.Fatalf("fence error fields: %+v", fe)
	}
}

func TestMailboxOverflowIsTyped(t *testing.T) {
	netw := rpc.NewLoopbackNetwork(2)
	defer netw.Close()
	c0 := New(netw.Transport(0), &metrics.Breakdown{}, WithPendingLimit(2))
	t1 := netw.Transport(1)

	// Three future-phase messages overflow a 2-slot buffer while worker 0
	// is waiting on phase 0.
	for i := int32(1); i <= 3; i++ {
		if err := t1.Send(0, &rpc.Message{Kind: rpc.KindFeatures, From: 1, Epoch: 0, Layer: i}); err != nil {
			t.Fatal(err)
		}
	}
	go t1.Recv()
	_, err := c0.Exchange(Fence{Epoch: 0, Phase: 0}, rpc.KindFeatures, func(int) *rpc.Message {
		return &rpc.Message{Kind: rpc.KindFeatures}
	}, nil)
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverflowError, got %v", err)
	}
	if oe.Limit != 2 {
		t.Fatalf("overflow limit: %+v", oe)
	}
}

func TestBarrier(t *testing.T) {
	const k = 3
	netw := rpc.NewLoopbackNetwork(k)
	defer netw.Close()
	var wg sync.WaitGroup
	errs := make([]error, k)
	for rank := 0; rank < k; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := New(netw.Transport(rank), &metrics.Breakdown{})
			for epoch := int32(0); epoch < 3; epoch++ {
				if err := c.Barrier(Fence{Epoch: epoch}); err != nil {
					errs[rank] = fmt.Errorf("epoch %d: %w", epoch, err)
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestSingleWorkerCollectivesAreNoOps(t *testing.T) {
	netw := rpc.NewLoopbackNetwork(1)
	defer netw.Close()
	bd := &metrics.Breakdown{}
	c := New(netw.Transport(0), bd)
	data := []float32{1, 2, 3}
	if err := c.AllReduce(Fence{}, data, rpc.KindGrads); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(Fence{}); err != nil {
		t.Fatal(err)
	}
	ran := false
	if _, err := c.Exchange(Fence{}, rpc.KindFeatures, func(int) *rpc.Message { return nil }, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("overlap must still run at k=1")
	}
	if data[0] != 1 || bd.MessagesSent.Load() != 0 {
		t.Fatalf("k=1 must not touch data or the wire: %v, %d msgs", data, bd.MessagesSent.Load())
	}
}

package collective

import (
	"fmt"
	"time"

	"repro/internal/rpc"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Ring all-reduce.
//
// The payload is cut into ringChunk-word segments that flow around the ring
// in two pipelined phases:
//
//	reduce:     0 → 1 → … → k−1   each hop adds the local contribution
//	distribute: k−1 → 0 → … → k−2  the finished sums continue around
//
// Chunk c therefore crosses every link at most twice, so each worker
// transmits at most 2·|payload| bytes (+ frame headers) regardless of k —
// versus (k−1)·|payload| for the broadcast this replaces. Chunking lets the
// distribute phase of early segments overlap the reduce phase of later
// ones, keeping all links busy like the classic ring algorithm.
//
// Accumulation is strictly in rank order (((x₀+x₁)+x₂)+…), which makes the
// result bit-identical on every worker and bit-identical to
// AllReduceBroadcast's rank-ordered sum — float addition is commutative, so
// "received partial + own chunk" equals the canonical order at every hop.

// ring step tags packed into the message Layer field, namespaced per chunk
// and phase on top of the caller's fence phase.
func reduceTag(base int32, chunk int) int32     { return base + int32(2*chunk) }
func distributeTag(base int32, chunk int) int32 { return base + int32(2*chunk+1) }

// recvStep is a ring-step receive with fence-wait accounting: the time
// blocked on the ring predecessor lands in the same per-rank straggler-wait
// histogram the fenced collectives feed.
func (c *Comm) recvStep(kind rpc.MsgKind, f Fence, from int) (*rpc.Message, error) {
	if c.fenceWait == nil {
		return c.mb.recvFrom(kind, f, from, c.recvTimeout)
	}
	t0 := time.Now()
	m, err := c.mb.recvFrom(kind, f, from, c.recvTimeout)
	c.fenceWait.ObserveSince(t0)
	return m, err
}

// AllReduce sums data elementwise across all workers, in place, using the
// chunked ring algorithm. kind tags the wire messages (gradient sync uses
// rpc.KindGrads). At most one AllReduce of a given kind may run per fence.
func (c *Comm) AllReduce(f Fence, data []float32, kind rpc.MsgKind) error {
	k, rank := c.tr.Size(), c.tr.Rank()
	if k == 1 || len(data) == 0 {
		return nil
	}
	c.ops.Inc()
	// Deferred via closure, not value: Link mutates the region after the
	// defer statement, and a value defer would capture a link-free copy.
	span := c.tracer.Begin(int32(rank), f.Epoch, f.Phase, trace.CatComm, "allreduce")
	defer func() { span.End() }()
	spanID := span.ID()
	last := k - 1
	next, prev := (rank+1)%k, (rank-1+k)%k
	// Cap the chunk count well below the transports' inbox capacity so the
	// ring's send backpressure can never close a blocking cycle.
	const maxRingChunks = 512
	chunkWords := c.ringChunk
	if lo := (len(data) + maxRingChunks - 1) / maxRingChunks; chunkWords < lo {
		chunkWords = lo
	}
	nchunks := (len(data) + chunkWords - 1) / chunkWords

	segment := func(ci int) []float32 {
		lo := ci * chunkWords
		hi := min(lo+chunkWords, len(data))
		return data[lo:hi]
	}

	// Reduce phase: rank 0 seeds each chunk, every later rank folds its
	// contribution in and forwards; the last rank ends up with the full
	// sum and immediately starts the chunk on its distribute lap.
	for ci := 0; ci < nchunks; ci++ {
		seg := segment(ci)
		if rank > 0 {
			m, err := c.recvStep(kind, Fence{f.Epoch, reduceTag(f.Phase, ci)}, prev)
			if err != nil {
				return err
			}
			if len(m.Data) != len(seg) {
				return fmt.Errorf("collective: ring chunk %d from worker %d has %d words, want %d",
					ci, prev, len(m.Data), len(seg))
			}
			span.Link(m.Trace)
			tensor.AddUnrolled(seg, m.Data)
		}
		tag := reduceTag(f.Phase, ci)
		if rank == last {
			tag = distributeTag(f.Phase, ci)
		}
		if err := c.send(next, Fence{f.Epoch, tag}, &rpc.Message{Kind: kind, Data: seg, Dim: 1, Trace: spanID}); err != nil {
			return err
		}
	}
	if rank == last {
		return nil
	}
	// Distribute phase: receive the finished sums from the ring
	// predecessor and forward them until the lap closes at rank k−2.
	for ci := 0; ci < nchunks; ci++ {
		seg := segment(ci)
		m, err := c.recvStep(kind, Fence{f.Epoch, distributeTag(f.Phase, ci)}, prev)
		if err != nil {
			return err
		}
		if len(m.Data) != len(seg) {
			return fmt.Errorf("collective: ring chunk %d from worker %d has %d words, want %d",
				ci, prev, len(m.Data), len(seg))
		}
		span.Link(m.Trace)
		copy(seg, m.Data)
		if next != last {
			if err := c.send(next, Fence{f.Epoch, distributeTag(f.Phase, ci)}, &rpc.Message{Kind: kind, Data: seg, Dim: 1, Trace: spanID}); err != nil {
				return err
			}
		}
	}
	return nil
}

// AllReduceBroadcast is the pre-refactor gradient synchronisation: every
// worker ships its full payload to every peer — (k−1)·|payload| bytes per
// worker — and sums the k contributions in rank order. It is kept as the
// equivalence reference for the ring algorithm (both sum in rank order, so
// results are bit-identical) and as a debugging fallback.
func (c *Comm) AllReduceBroadcast(f Fence, data []float32, kind rpc.MsgKind) error {
	k, rank := c.tr.Size(), c.tr.Rank()
	if k == 1 || len(data) == 0 {
		return nil
	}
	own := append([]float32(nil), data...)
	msg := &rpc.Message{Kind: kind, Data: own, Dim: 1}
	msgs, err := c.Exchange(f, kind, func(int) *rpc.Message { return msg }, nil)
	if err != nil {
		return err
	}
	contrib := make([][]float32, k)
	contrib[rank] = own
	for _, m := range msgs {
		if int(m.From) < 0 || int(m.From) >= k || contrib[m.From] != nil {
			return fmt.Errorf("collective: unexpected all-reduce contribution from worker %d", m.From)
		}
		if len(m.Data) != len(data) {
			return fmt.Errorf("collective: all-reduce payload from worker %d has %d words, want %d",
				m.From, len(m.Data), len(data))
		}
		contrib[m.From] = m.Data
	}
	copy(data, contrib[0])
	for r := 1; r < k; r++ {
		tensor.AddUnrolled(data, contrib[r])
	}
	return nil
}

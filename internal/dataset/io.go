package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// This file implements dataset serialisation — the role of the paper's
// storage-system tier (Fig. 12): graphs and vertex features live in durable
// storage and are loaded by the NN framework, graph engine and load
// balancer. The format is a single self-describing binary file:
//
//	magic "FGDS" | u32 version
//	| name (u32 len + bytes)
//	| u32 numVertices | u32 numClasses | u32 featureDim | u32 numTypes
//	| numVertices × u8 vertex types (only when numTypes > 1)
//	| u64 numEdges | numEdges × (u32 src, u32 dst)
//	| numVertices×featureDim × f32 features
//	| numVertices × u32 labels
//	| numVertices × u8 train mask
//	| u32 numMetapaths | per metapath: name + u32 len + len × u8 types
//
// Everything little-endian.

const (
	datasetMagic   = "FGDS"
	datasetVersion = 1
)

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u32(v uint32) {
	if b.err == nil {
		b.err = binary.Write(b.w, binary.LittleEndian, v)
	}
}
func (b *binWriter) u64(v uint64) {
	if b.err == nil {
		b.err = binary.Write(b.w, binary.LittleEndian, v)
	}
}
func (b *binWriter) u8(v uint8) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}
func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u32() uint32 {
	var v uint32
	if b.err == nil {
		b.err = binary.Read(b.r, binary.LittleEndian, &v)
	}
	return v
}
func (b *binReader) u64() uint64 {
	var v uint64
	if b.err == nil {
		b.err = binary.Read(b.r, binary.LittleEndian, &v)
	}
	return v
}
func (b *binReader) u8() uint8 {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}
func (b *binReader) str() string {
	n := b.u32()
	if b.err != nil || n > 1<<20 {
		if b.err == nil {
			b.err = fmt.Errorf("dataset: unreasonable string length %d", n)
		}
		return ""
	}
	buf := make([]byte, n)
	if b.err == nil {
		_, b.err = io.ReadFull(b.r, buf)
	}
	return string(buf)
}

// Write serialises the dataset to w.
func (d *Dataset) Write(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriterSize(w, 1<<16)}
	bw.w.WriteString(datasetMagic)
	bw.u32(datasetVersion)
	bw.str(d.Name)
	g := d.Graph
	n := g.NumVertices()
	bw.u32(uint32(n))
	bw.u32(uint32(d.NumClasses))
	bw.u32(uint32(d.FeatureDim()))
	bw.u32(uint32(g.NumTypes()))
	if g.NumTypes() > 1 {
		for v := 0; v < n; v++ {
			bw.u8(g.Type(graph.VertexID(v)))
		}
	}
	bw.u64(uint64(g.NumEdges()))
	for v := 0; v < n; v++ {
		for _, u := range g.OutNeighbors(graph.VertexID(v)) {
			bw.u32(uint32(v))
			bw.u32(uint32(u))
		}
	}
	for _, f := range d.Features.Data() {
		bw.u32(math.Float32bits(f))
	}
	for _, l := range d.Labels {
		bw.u32(uint32(l))
	}
	for _, m := range d.TrainMask {
		if m {
			bw.u8(1)
		} else {
			bw.u8(0)
		}
	}
	bw.u32(uint32(len(d.Metapaths)))
	for _, mp := range d.Metapaths {
		bw.str(mp.Name)
		bw.u32(uint32(len(mp.Types)))
		for _, t := range mp.Types {
			bw.u8(t)
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// Read deserialises a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != datasetMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	if v := br.u32(); br.err == nil && v != datasetVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", v)
	}
	name := br.str()
	n := int(br.u32())
	classes := int(br.u32())
	featDim := int(br.u32())
	numTypes := int(br.u32())
	if br.err != nil {
		return nil, br.err
	}
	var types []uint8
	if numTypes > 1 {
		types = make([]uint8, n)
		for v := range types {
			types[v] = br.u8()
		}
	}
	b := graph.NewBuilder(n)
	if types != nil {
		b.SetTypes(types, numTypes)
	}
	edges := br.u64()
	for e := uint64(0); e < edges && br.err == nil; e++ {
		src, dst := br.u32(), br.u32()
		if br.err == nil {
			b.AddEdge(graph.VertexID(src), graph.VertexID(dst))
		}
	}
	feats := tensor.New(n, featDim)
	fd := feats.Data()
	for i := range fd {
		fd[i] = math.Float32frombits(br.u32())
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(br.u32())
	}
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = br.u8() == 1
	}
	numMP := int(br.u32())
	var metapaths []graph.Metapath
	for i := 0; i < numMP && br.err == nil; i++ {
		mpName := br.str()
		l := int(br.u32())
		mp := graph.Metapath{Name: mpName, Types: make([]uint8, l)}
		for j := range mp.Types {
			mp.Types[j] = br.u8()
		}
		metapaths = append(metapaths, mp)
	}
	if br.err != nil {
		return nil, br.err
	}
	return &Dataset{
		Name:       name,
		Graph:      b.Build(),
		Features:   feats,
		Labels:     labels,
		TrainMask:  mask,
		NumClasses: classes,
		Metapaths:  metapaths,
	}, nil
}

// Save writes the dataset to path atomically.
func (d *Dataset) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a dataset from path.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

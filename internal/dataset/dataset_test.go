package dataset

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestRedditLikeShape(t *testing.T) {
	d := RedditLike(Config{Scale: 0.1})
	if d.Graph.NumVertices() < 100 {
		t.Fatalf("too few vertices: %d", d.Graph.NumVertices())
	}
	if len(d.Labels) != d.Graph.NumVertices() || len(d.TrainMask) != d.Graph.NumVertices() {
		t.Fatal("labels/mask length mismatch")
	}
	if d.Features.Rows() != d.Graph.NumVertices() {
		t.Fatal("features rows mismatch")
	}
	avgDeg := float64(d.Graph.NumEdges()) / float64(d.Graph.NumVertices())
	if avgDeg < 20 {
		t.Fatalf("reddit-like must be dense, avg degree = %v", avgDeg)
	}
}

func TestPowerLawSkew(t *testing.T) {
	d := FB91Like(Config{Scale: 0.25})
	g := d.Graph
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.OutDegree(graph.VertexID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// Power-law: the top 1% of vertices should hold a disproportionate
	// share of edges; uniform graphs would give them ~1%.
	top := len(degs) / 100
	if top == 0 {
		top = 1
	}
	var topSum, total int
	for i, d := range degs {
		total += d
		if i < top {
			topSum += d
		}
	}
	share := float64(topSum) / float64(total)
	if share < 0.05 {
		t.Fatalf("top-1%% degree share %.3f too small for power law", share)
	}
	if degs[0] < 10*degs[len(degs)/2] {
		t.Fatalf("max degree %d not ≫ median %d", degs[0], degs[len(degs)/2])
	}
}

func TestTwitterLargerThanFB91(t *testing.T) {
	cfg := Config{Scale: 0.1}
	fb, tw := FB91Like(cfg), TwitterLike(cfg)
	if tw.Graph.NumVertices() <= fb.Graph.NumVertices() {
		t.Fatal("twitter-like should have more vertices than fb91-like")
	}
}

func TestIMDBHeterogeneous(t *testing.T) {
	d := IMDBLike(Config{Scale: 0.1})
	g := d.Graph
	if g.NumTypes() != 3 {
		t.Fatalf("NumTypes = %d", g.NumTypes())
	}
	counts := make([]int, 3)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Type(graph.VertexID(v))]++
	}
	for ty, c := range counts {
		if c == 0 {
			t.Fatalf("no vertices of type %d", ty)
		}
	}
	if len(d.Metapaths) != 6 {
		t.Fatalf("want 6 metapaths (§7), got %d", len(d.Metapaths))
	}
	for _, mp := range d.Metapaths {
		if mp.Length() != 3 {
			t.Fatalf("metapath %s has %d vertices, want 3", mp.Name, mp.Length())
		}
	}
	// Edges only connect movies to directors/actors (bipartite-ish).
	for v := 0; v < g.NumVertices(); v++ {
		tv := g.Type(graph.VertexID(v))
		for _, u := range g.OutNeighbors(graph.VertexID(v)) {
			tu := g.Type(u)
			if (tv == TypeMovie) == (tu == TypeMovie) {
				t.Fatalf("edge %d(%d) -> %d(%d) violates movie-bipartite structure", v, tv, u, tu)
			}
		}
	}
	// Metapath instances must exist for a movie vertex with a director.
	found := false
	for v := 0; v < 50 && !found; v++ {
		if g.Type(graph.VertexID(v)) == TypeMovie {
			if len(g.MetapathInstances(graph.VertexID(v), d.Metapaths[0], 5)) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no MDM metapath instances found for any early movie")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 99}
	a, b := RedditLike(cfg), RedditLike(cfg)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	if !a.Features.ApproxEqual(b.Features, 0) {
		t.Fatal("same seed must give same features")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed must give same labels")
		}
	}
	c := RedditLike(Config{Scale: 0.1, Seed: 100})
	if a.Graph.NumEdges() == c.Graph.NumEdges() && a.Features.ApproxEqual(c.Features, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestFeaturesCorrelateWithLabels(t *testing.T) {
	d := RedditLike(Config{Scale: 0.1})
	dim := d.FeatureDim()
	block := dim / d.NumClasses
	// Mean of a vertex's own label block should exceed the global mean.
	var inBlock, outBlock float64
	var inN, outN int
	for v := 0; v < d.Graph.NumVertices(); v++ {
		start := int(d.Labels[v]) * block
		for j := 0; j < dim; j++ {
			val := float64(d.Features.At(v, j))
			if j >= start && j < start+block {
				inBlock += val
				inN++
			} else {
				outBlock += val
				outN++
			}
		}
	}
	if inBlock/float64(inN) < outBlock/float64(outN)+0.5 {
		t.Fatalf("label signal too weak: in=%.3f out=%.3f", inBlock/float64(inN), outBlock/float64(outN))
	}
}

func TestTrainMaskFraction(t *testing.T) {
	d := RedditLike(Config{Scale: 0.25})
	n := 0
	for _, m := range d.TrainMask {
		if m {
			n++
		}
	}
	frac := float64(n) / float64(len(d.TrainMask))
	if math.Abs(frac-0.7) > 0.1 {
		t.Fatalf("train fraction = %v, want ~0.7", frac)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"reddit", "fb91", "twitter", "imdb"} {
		d, err := ByName(name, Config{Scale: 0.05})
		if err != nil || d.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := ByName("nope", Config{}); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestStatsString(t *testing.T) {
	d := IMDBLike(Config{Scale: 0.05})
	s := d.Stats()
	if s.Vertices != d.Graph.NumVertices() || s.Labels != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestAllSuite(t *testing.T) {
	ds := All(Config{Scale: 0.05})
	if len(ds) != 4 {
		t.Fatalf("All returned %d datasets", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
	}
	for _, want := range []string{"reddit", "fb91", "twitter", "imdb"} {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
}

func TestFeatureDimOverride(t *testing.T) {
	d := RedditLike(Config{Scale: 0.02, Seed: 22, FeatureDim: 128})
	if d.FeatureDim() != 128 {
		t.Fatalf("FeatureDim = %d", d.FeatureDim())
	}
}

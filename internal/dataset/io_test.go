package dataset

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestDatasetRoundTrip(t *testing.T) {
	orig := IMDBLike(Config{Scale: 0.05, Seed: 5})
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NumClasses != orig.NumClasses {
		t.Fatalf("metadata mismatch: %q/%d", got.Name, got.NumClasses)
	}
	if got.Graph.NumVertices() != orig.Graph.NumVertices() || got.Graph.NumEdges() != orig.Graph.NumEdges() {
		t.Fatal("graph dims mismatch")
	}
	for v := 0; v < got.Graph.NumVertices(); v++ {
		if got.Graph.Type(graph.VertexID(v)) != orig.Graph.Type(graph.VertexID(v)) {
			t.Fatal("vertex types mismatch")
		}
		a, b := got.Graph.OutNeighbors(graph.VertexID(v)), orig.Graph.OutNeighbors(graph.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
	if !got.Features.ApproxEqual(orig.Features, 0) {
		t.Fatal("features mismatch")
	}
	for i := range orig.Labels {
		if got.Labels[i] != orig.Labels[i] || got.TrainMask[i] != orig.TrainMask[i] {
			t.Fatal("labels/mask mismatch")
		}
	}
	if len(got.Metapaths) != len(orig.Metapaths) {
		t.Fatal("metapaths mismatch")
	}
	for i, mp := range orig.Metapaths {
		if got.Metapaths[i].Name != mp.Name || len(got.Metapaths[i].Types) != len(mp.Types) {
			t.Fatal("metapath content mismatch")
		}
	}
}

func TestHomogeneousRoundTripKeepsAssignedTypes(t *testing.T) {
	// Reddit-like graphs carry 3 assigned types (for MAGNN); they must
	// survive serialisation.
	orig := RedditLike(Config{Scale: 0.02, Seed: 6})
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumTypes() != 3 {
		t.Fatalf("NumTypes = %d after round trip", got.Graph.NumTypes())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reddit.fgds")
	orig := RedditLike(Config{Scale: 0.02, Seed: 7})
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumEdges() != orig.Graph.NumEdges() {
		t.Fatal("edge count mismatch after file round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := Read(bytes.NewReader([]byte("FG"))); err == nil {
		t.Fatal("truncated magic must be rejected")
	}
	// Valid magic, truncated body.
	d := RedditLike(Config{Scale: 0.02, Seed: 8})
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated dataset must be rejected")
	}
}

// Package dataset synthesises the evaluation graphs of the paper's Table 1.
// The real datasets (Reddit, LDBC FB91, Twitter, IMDB) are not available
// offline, so each generator reproduces the property the paper says drives
// the corresponding result:
//
//   - RedditLike: dense, near-uniform degree (Reddit has 233K vertices and
//     11.6M edges, ~50 average degree) — dense graphs break the k-hop
//     mini-batch strategy of Euler/DistDGL (§7.1).
//   - FB91Like / TwitterLike: heavy power-law degree skew via preferential
//     attachment — skew breaks both the mini-batch strategy and static
//     partition balance (§5, §7.6).
//   - IMDBLike: small heterogeneous graph with 3 vertex types for MAGNN's
//     metapaths (§7, Table 1).
//
// All generators are deterministic for a given seed, and sizes scale with
// Config.Scale so experiments run laptop-sized by default.
package dataset

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Dataset bundles a graph with vertex features, labels and a train mask.
type Dataset struct {
	Name       string
	Graph      *graph.Graph
	Features   *tensor.Tensor // [NumVertices, FeatureDim]
	Labels     []int32
	TrainMask  []bool
	NumClasses int
	// Metapaths are defined only for heterogeneous datasets.
	Metapaths []graph.Metapath
}

// FeatureDim returns the width of the feature matrix.
func (d *Dataset) FeatureDim() int { return d.Features.Dim(1) }

// Stats is a Table-1-style summary row.
type Stats struct {
	Name     string
	Vertices int
	Edges    int64
	Features int
	Labels   int
}

// Stats returns the dataset's summary row.
func (d *Dataset) Stats() Stats {
	return Stats{
		Name:     d.Name,
		Vertices: d.Graph.NumVertices(),
		Edges:    d.Graph.NumEdges(),
		Features: d.FeatureDim(),
		Labels:   d.NumClasses,
	}
}

// String formats the stats row.
func (s Stats) String() string {
	return fmt.Sprintf("%-12s %9d vertices %12d edges %5d features %4d labels",
		s.Name, s.Vertices, s.Edges, s.Features, s.Labels)
}

// Config controls generator sizes. The zero value selects the defaults
// below via the With* helpers.
type Config struct {
	// Scale multiplies the default vertex counts; 1.0 is the default
	// laptop-sized configuration.
	Scale float64
	// FeatureDim overrides the synthetic feature width (0 = per-dataset
	// default).
	FeatureDim int
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s == 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 8 {
		v = 8
	}
	return v
}

func (c Config) featDim(def int) int {
	if c.FeatureDim > 0 {
		return c.FeatureDim
	}
	return def
}

func (c Config) rng() *tensor.RNG {
	seed := c.Seed
	if seed == 0 {
		seed = 20210426 // EuroSys '21 opening day
	}
	return tensor.NewRNG(seed)
}

// synthesizeFeatures assigns features correlated with labels so models have
// signal to learn: the label's block of coordinates gets a positive mean.
func synthesizeFeatures(rng *tensor.RNG, n, dim, classes int, labels []int32) *tensor.Tensor {
	feats := tensor.RandN(rng, 0.5, n, dim)
	block := dim / classes
	if block == 0 {
		block = 1
	}
	fd := feats.Data()
	for v := 0; v < n; v++ {
		start := int(labels[v]) * block
		for j := start; j < start+block && j < dim; j++ {
			fd[v*dim+j] += 1.5
		}
	}
	return feats
}

func synthesizeLabels(rng *tensor.RNG, n, classes int) []int32 {
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(rng.Intn(classes))
	}
	return labels
}

func trainMask(rng *tensor.RNG, n int, frac float64) []bool {
	mask := make([]bool, n)
	for v := range mask {
		mask[v] = rng.Float64() < frac
	}
	return mask
}

// RedditLike generates a dense community graph: vertices join a handful of
// "subreddits" and connect to many random co-members, yielding near-uniform
// high degree.
func RedditLike(cfg Config) *Dataset {
	rng := cfg.rng()
	n := cfg.scale(4000)
	avgDeg := 48
	numCommunities := n/100 + 2
	classes := 16

	community := make([]int, n)
	for v := range community {
		community[v] = rng.Intn(numCommunities)
	}
	members := make(map[int][]graph.VertexID)
	for v, c := range community {
		members[c] = append(members[c], graph.VertexID(v))
	}

	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		peers := members[community[v]]
		// Half the edges stay inside the community, half are random.
		for e := 0; e < avgDeg/2; e++ {
			var dst graph.VertexID
			if e%2 == 0 && len(peers) > 1 {
				dst = peers[rng.Intn(len(peers))]
			} else {
				dst = graph.VertexID(rng.Intn(n))
			}
			if dst != graph.VertexID(v) {
				b.AddUndirected(graph.VertexID(v), dst)
			}
		}
	}
	b.SetTypes(cyclicTypes(n), 3)
	g := b.Build()
	// Labels follow communities (vertices in a subreddit share a topic),
	// so neighborhood aggregation carries real signal.
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(community[v] % classes)
	}
	return &Dataset{
		Name:       "reddit",
		Graph:      g,
		Features:   synthesizeFeatures(rng, n, cfg.featDim(64), classes, labels),
		Labels:     labels,
		TrainMask:  trainMask(rng, n, 0.7),
		NumClasses: classes,
		Metapaths:  homogeneousMetapaths(),
	}
}

// cyclicTypes assigns 3 vertex types round-robin. The paper's §7 MAGNN
// setup gives Reddit, FB91 and Twitter 3 vertex types and 6 metapaths even
// though the underlying graphs are homogeneous.
func cyclicTypes(n int) []uint8 {
	types := make([]uint8, n)
	for v := range types {
		types[v] = uint8(v % 3)
	}
	return types
}

// homogeneousMetapaths returns the 6 length-3 metapaths used for MAGNN on
// the typed homogeneous graphs (each instance has 3 vertices, §7).
func homogeneousMetapaths() []graph.Metapath {
	return []graph.Metapath{
		{Name: "ABA", Types: []uint8{0, 1, 0}},
		{Name: "ACA", Types: []uint8{0, 2, 0}},
		{Name: "BAB", Types: []uint8{1, 0, 1}},
		{Name: "BCB", Types: []uint8{1, 2, 1}},
		{Name: "CAC", Types: []uint8{2, 0, 2}},
		{Name: "CBC", Types: []uint8{2, 1, 2}},
	}
}

// powerLaw generates a homophilous preferential-attachment graph: each new
// vertex attaches m edges to targets sampled proportionally to current
// degree, preferring targets in its own community, producing both the
// heavy-tailed degree distribution of FB91 and Twitter and
// label-correlated neighborhoods (labels follow communities).
func powerLaw(name string, cfg Config, defaultN, m, classes, featDim int) *Dataset {
	rng := cfg.rng()
	n := cfg.scale(defaultN)
	b := graph.NewBuilder(n)
	community := make([]int, n)
	for v := range community {
		community[v] = rng.Intn(classes)
	}
	// targets holds one entry per edge endpoint; sampling uniformly from
	// it is degree-proportional sampling.
	targets := make([]graph.VertexID, 0, 2*n*m)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		for e := 0; e < m; e++ {
			dst := targets[rng.Intn(len(targets))]
			// Homophily: retry a few times for a same-community target.
			for try := 0; try < 6 && community[dst] != community[v]; try++ {
				dst = targets[rng.Intn(len(targets))]
			}
			if dst == graph.VertexID(v) {
				dst = graph.VertexID(rng.Intn(v))
			}
			b.AddUndirected(graph.VertexID(v), dst)
			targets = append(targets, dst)
		}
		targets = append(targets, graph.VertexID(v))
	}
	b.SetTypes(cyclicTypes(n), 3)
	g := b.Build()
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(community[v])
	}
	return &Dataset{
		Name:       name,
		Graph:      g,
		Features:   synthesizeFeatures(rng, n, cfg.featDim(featDim), classes, labels),
		Labels:     labels,
		TrainMask:  trainMask(rng, n, 0.7),
		NumClasses: classes,
		Metapaths:  homogeneousMetapaths(),
	}
}

// FB91Like generates the LDBC-FB91-shaped dataset: large, power-law.
func FB91Like(cfg Config) *Dataset { return powerLaw("fb91", cfg, 8000, 20, 10, 50) }

// TwitterLike generates the Twitter-shaped dataset: larger vertex set,
// power-law with a slightly lower attachment count.
func TwitterLike(cfg Config) *Dataset { return powerLaw("twitter", cfg, 12000, 16, 5, 50) }

// IMDB vertex types.
const (
	TypeMovie    uint8 = 0
	TypeDirector uint8 = 1
	TypeActor    uint8 = 2
)

// IMDBLike generates the IMDB-shaped heterogeneous dataset: movies,
// directors and actors, with movie-director and movie-actor edges and the
// classic MDM / MAM metapaths (each instance has 3 vertices, matching the
// paper's "each metapath instance containing 3 vertices"). Six metapaths
// are defined, as in §7's MAGNN setup.
func IMDBLike(cfg Config) *Dataset {
	rng := cfg.rng()
	numMovies := cfg.scale(1200)
	numDirectors := numMovies / 5
	numActors := numMovies / 2
	n := numMovies + numDirectors + numActors
	classes := 4

	types := make([]uint8, n)
	for v := numMovies; v < numMovies+numDirectors; v++ {
		types[v] = TypeDirector
	}
	for v := numMovies + numDirectors; v < n; v++ {
		types[v] = TypeActor
	}

	b := graph.NewBuilder(n)
	b.SetTypes(types, 3)
	for mv := 0; mv < numMovies; mv++ {
		d := numMovies + rng.Intn(numDirectors)
		b.AddUndirected(graph.VertexID(mv), graph.VertexID(d))
		numCast := 2 + rng.Intn(4)
		for a := 0; a < numCast; a++ {
			actor := numMovies + numDirectors + rng.Intn(numActors)
			b.AddUndirected(graph.VertexID(mv), graph.VertexID(actor))
		}
	}
	g := b.Build()
	labels := synthesizeLabels(rng, n, classes)
	metapaths := []graph.Metapath{
		{Name: "MDM", Types: []uint8{TypeMovie, TypeDirector, TypeMovie}},
		{Name: "MAM", Types: []uint8{TypeMovie, TypeActor, TypeMovie}},
		{Name: "DMD", Types: []uint8{TypeDirector, TypeMovie, TypeDirector}},
		{Name: "DMA", Types: []uint8{TypeDirector, TypeMovie, TypeActor}},
		{Name: "AMA", Types: []uint8{TypeActor, TypeMovie, TypeActor}},
		{Name: "AMD", Types: []uint8{TypeActor, TypeMovie, TypeDirector}},
	}
	return &Dataset{
		Name:       "imdb",
		Graph:      g,
		Features:   synthesizeFeatures(rng, n, cfg.featDim(64), classes, labels),
		Labels:     labels,
		TrainMask:  trainMask(rng, n, 0.7),
		NumClasses: classes,
		Metapaths:  metapaths,
	}
}

// ByName returns the named dataset generator output; names match Table 1
// (reddit, fb91, twitter, imdb).
func ByName(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "reddit":
		return RedditLike(cfg), nil
	case "fb91":
		return FB91Like(cfg), nil
	case "twitter":
		return TwitterLike(cfg), nil
	case "imdb":
		return IMDBLike(cfg), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want reddit, fb91, twitter or imdb)", name)
	}
}

// All generates the full Table-1 suite.
func All(cfg Config) []*Dataset {
	return []*Dataset{RedditLike(cfg), FB91Like(cfg), TwitterLike(cfg), IMDBLike(cfg)}
}

// Package partition implements the graph partitioning used for distributed
// training (§5, §6): classical Hash partitioning, a PuLP-style label
// propagation partitioner, and FlexGraph's application-driven balancer ADB,
// which learns a polynomial cost model of the GNN's per-root training cost
// and migrates HDGs from overloaded to underloaded partitions along BFS
// locality, choosing among candidate plans by induced-graph edge cut.
package partition

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Partitioning assigns each vertex to one of K parts.
type Partitioning struct {
	K      int
	Assign []int32
}

// NewPartitioning returns an all-zeros assignment over n vertices.
func NewPartitioning(k, n int) *Partitioning {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	return &Partitioning{K: k, Assign: make([]int32, n)}
}

// Clone deep-copies the partitioning.
func (p *Partitioning) Clone() *Partitioning {
	return &Partitioning{K: p.K, Assign: append([]int32(nil), p.Assign...)}
}

// Parts returns the vertex lists per part.
func (p *Partitioning) Parts() [][]graph.VertexID {
	out := make([][]graph.VertexID, p.K)
	for v, part := range p.Assign {
		out[part] = append(out[part], graph.VertexID(v))
	}
	return out
}

// Sizes returns the vertex count per part.
func (p *Partitioning) Sizes() []int {
	out := make([]int, p.K)
	for _, part := range p.Assign {
		out[part]++
	}
	return out
}

// Loads sums cost[v] per part.
func (p *Partitioning) Loads(cost []float64) []float64 {
	out := make([]float64, p.K)
	for v, part := range p.Assign {
		out[part] += cost[v]
	}
	return out
}

// BalanceFactor returns max/mean of the per-part loads; 1.0 is perfectly
// balanced.
func BalanceFactor(loads []float64) float64 {
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(len(loads))
	return max / mean
}

// EdgeCut counts edges of g whose endpoints live in different parts.
func EdgeCut(g *graph.Graph, p *Partitioning) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		pv := p.Assign[v]
		for _, u := range g.OutNeighbors(graph.VertexID(v)) {
			if p.Assign[u] != pv {
				cut++
			}
		}
	}
	return cut
}

// Hash assigns vertex v to part v mod k — the classical baseline (§6).
func Hash(n, k int) *Partitioning {
	p := NewPartitioning(k, n)
	for v := range p.Assign {
		p.Assign[v] = int32(v % k)
	}
	return p
}

// LabelProp is a PuLP-style label-propagation partitioner: vertices start
// from a hash assignment and iteratively adopt the most common part among
// their neighbors, subject to a vertex-count capacity of slack × (n/k).
// It minimises edge cut and balances *vertex counts* — which, as §7.6
// shows, can leave the GNN *training cost* badly skewed.
func LabelProp(g *graph.Graph, k, iters int, slack float64, seed uint64) *Partitioning {
	n := g.NumVertices()
	p := Hash(n, k)
	if slack <= 0 {
		slack = 1.1
	}
	capacity := int(slack * float64(n) / float64(k))
	sizes := p.Sizes()
	rng := tensor.NewRNG(seed)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		moved := 0
		order := rng.Perm(n)
		for _, v := range order {
			for i := range counts {
				counts[i] = 0
			}
			for _, u := range g.OutNeighbors(graph.VertexID(v)) {
				counts[p.Assign[u]]++
			}
			cur := p.Assign[v]
			best := cur
			for part := int32(0); part < int32(k); part++ {
				if part == cur {
					continue
				}
				if counts[part] > counts[best] && sizes[part] < capacity {
					best = part
				}
			}
			if best != cur {
				sizes[cur]--
				sizes[best]++
				p.Assign[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return p
}

// validateCost panics unless cost has one entry per assignment slot.
func validateCost(p *Partitioning, cost []float64) {
	if len(cost) != len(p.Assign) {
		panic(fmt.Sprintf("partition: cost length %d != vertex count %d", len(cost), len(p.Assign)))
	}
}

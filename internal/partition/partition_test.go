package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/hdg"
	"repro/internal/tensor"
)

func TestHashBalanced(t *testing.T) {
	p := Hash(100, 4)
	sizes := p.Sizes()
	for _, s := range sizes {
		if s != 25 {
			t.Fatalf("hash sizes = %v", sizes)
		}
	}
}

func TestPartsRoundTrip(t *testing.T) {
	p := Hash(10, 3)
	parts := p.Parts()
	total := 0
	for part, vs := range parts {
		total += len(vs)
		for _, v := range vs {
			if p.Assign[v] != int32(part) {
				t.Fatal("Parts disagrees with Assign")
			}
		}
	}
	if total != 10 {
		t.Fatalf("parts cover %d of 10", total)
	}
}

func TestBalanceFactor(t *testing.T) {
	if got := BalanceFactor([]float64{1, 1, 1, 1}); got != 1 {
		t.Fatalf("uniform balance = %v", got)
	}
	if got := BalanceFactor([]float64{3, 1}); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("skewed balance = %v", got)
	}
}

func TestEdgeCut(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(0, 2)
	g := b.Build()
	p := NewPartitioning(2, 4)
	p.Assign = []int32{0, 0, 1, 1}
	if got := EdgeCut(g, p); got != 1 {
		t.Fatalf("EdgeCut = %d, want 1 (only 0->2 crosses)", got)
	}
}

func TestLabelPropReducesCut(t *testing.T) {
	d := dataset.RedditLike(dataset.Config{Scale: 0.1, Seed: 1})
	g := d.Graph
	hash := Hash(g.NumVertices(), 4)
	lp := LabelProp(g, 4, 5, 1.2, 2)
	if EdgeCut(g, lp) >= EdgeCut(g, hash) {
		t.Fatalf("label propagation should reduce edge cut: lp=%d hash=%d",
			EdgeCut(g, lp), EdgeCut(g, hash))
	}
	// Capacity respected.
	capacity := int(1.2 * float64(g.NumVertices()) / 4)
	for _, s := range lp.Sizes() {
		if s > capacity+1 {
			t.Fatalf("capacity violated: %v > %d", s, capacity)
		}
	}
}

func TestFitCostModelRecoversLinear(t *testing.T) {
	// Synthetic: cost = 2 + 3*x1 + 0.5*x2.
	rng := tensor.NewRNG(3)
	var samples []CostSample
	for i := 0; i < 200; i++ {
		x1, x2 := rng.Float64()*10, rng.Float64()*10
		samples = append(samples, CostSample{
			Features: []float64{x1, x2},
			Cost:     2 + 3*x1 + 0.5*x2,
		})
	}
	m := FitCostModel(samples, 2)
	if math.Abs(m.Coef[0]-2) > 0.05 || math.Abs(m.Coef[1]-3) > 0.05 || math.Abs(m.Coef[2]-0.5) > 0.05 {
		t.Fatalf("recovered coefficients %v, want [2 3 0.5]", m.Coef)
	}
	if got := m.Predict([]float64{1, 2}); math.Abs(got-6) > 0.1 {
		t.Fatalf("Predict = %v, want 6", got)
	}
}

func TestFitCostModelNoisy(t *testing.T) {
	rng := tensor.NewRNG(4)
	var samples []CostSample
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		noise := (rng.Float64() - 0.5) * 0.2
		samples = append(samples, CostSample{Features: []float64{x}, Cost: 5*x + noise})
	}
	m := FitCostModel(samples, 1)
	if math.Abs(m.Coef[1]-5) > 0.1 {
		t.Fatalf("noisy fit slope = %v, want ~5", m.Coef[1])
	}
}

// buildFig11Setup reproduces the paper's §5 example: partition #1 holds
// {B,C,D,E} with cost 60, partition #2 holds {A,F,G,H,I} with cost 600.
func buildFig11Setup() (*graph.Graph, *Partitioning, []float64) {
	// Induced graph of the MAGNN HDGs (Fig. 11b): connect each root to its
	// metapath-instance leaf vertices.
	// A(0) B(1) C(2) D(3) E(4) F(5) G(6) H(7) I(8).
	schema := hdg.NewSchemaTree("MP1", "MP2")
	recs := []hdg.Record{
		// HDG(A): p1..p5 (Fig. 11a).
		{Root: 0, Nei: []graph.VertexID{0, 3, 2}, Type: 0},
		{Root: 0, Nei: []graph.VertexID{0, 4, 1}, Type: 1},
		{Root: 0, Nei: []graph.VertexID{0, 5, 6}, Type: 1},
		{Root: 0, Nei: []graph.VertexID{0, 7, 6}, Type: 1},
		{Root: 0, Nei: []graph.VertexID{0, 7, 8}, Type: 1},
		// HDG(B): one instance (B,E,A) (Fig. 11a bottom left).
		{Root: 1, Nei: []graph.VertexID{1, 4, 0}, Type: 0},
		// HDG(G): (G,H,I), (G,H,A), (G,F,A) style instances.
		{Root: 6, Nei: []graph.VertexID{6, 7, 8}, Type: 1},
		{Root: 6, Nei: []graph.VertexID{6, 7, 0}, Type: 1},
		{Root: 6, Nei: []graph.VertexID{6, 5, 0}, Type: 1},
		// HDG(I): (I,H,A), (I,H,G).
		{Root: 8, Nei: []graph.VertexID{8, 7, 0}, Type: 1},
		{Root: 8, Nei: []graph.VertexID{8, 7, 6}, Type: 1},
	}
	roots := []graph.VertexID{0, 1, 6, 8}
	h, err := hdg.Build(schema, roots, recs)
	if err != nil {
		panic(err)
	}
	induced := InducedGraph(h, 9)
	p := NewPartitioning(2, 9)
	//            A  B  C  D  E  F  G  H  I
	p.Assign = []int32{1, 0, 0, 0, 0, 1, 1, 1, 1}
	// Costs follow the paper: f(partition #1) = 60 (vertex B), f(#2) = 600
	// (A=500-ish dominates; G and I contribute the rest).
	cost := []float64{300, 60, 0, 0, 0, 0, 180, 0, 120}
	return induced, p, cost
}

func TestADBTriggersOnlyAboveThreshold(t *testing.T) {
	induced, p, _ := buildFig11Setup()
	// Partition #1 holds {B,C,D,E} (cost 20), #2 holds {A,F,G,H,I}
	// (cost 20): perfectly balanced.
	balanced := []float64{20, 10, 5, 5, 0, 0, 0, 0, 0}
	a := DefaultADB()
	if got := a.Rebalance(induced, p, balanced); got != p {
		t.Fatal("balanced loads must not trigger migration")
	}
}

func TestADBImprovesBalance(t *testing.T) {
	induced, p, cost := buildFig11Setup()
	a := DefaultADB()
	before := BalanceFactor(p.Loads(cost))
	got := a.Rebalance(induced, p, cost)
	after := BalanceFactor(got.Loads(cost))
	if after >= before {
		t.Fatalf("ADB did not improve balance: %v -> %v", before, after)
	}
}

func TestADBOnSkewedDatasetBeatsStaticPartitioners(t *testing.T) {
	// The Fig. 15a shape: per-root GNN cost is skewed on power-law graphs,
	// so cost balance under ADB beats Hash and LabelProp.
	d := dataset.FB91Like(dataset.Config{Scale: 0.05, Seed: 5})
	g := d.Graph
	n := g.NumVertices()
	// Per-root cost proportional to degree² (2-hop aggregation work).
	cost := make([]float64, n)
	for v := 0; v < n; v++ {
		deg := float64(g.OutDegree(graph.VertexID(v)))
		cost[v] = 1 + deg*deg
	}
	k := 4
	hash := Hash(n, k)
	lp := LabelProp(g, k, 5, 1.2, 6)
	a := DefaultADB()
	adb := a.Rebalance(g, hash.Clone(), cost)

	bHash := BalanceFactor(hash.Loads(cost))
	bLP := BalanceFactor(lp.Loads(cost))
	bADB := BalanceFactor(adb.Loads(cost))
	if bADB >= bHash {
		t.Fatalf("ADB balance %v must beat Hash %v", bADB, bHash)
	}
	if bADB >= bLP {
		t.Fatalf("ADB balance %v must beat LabelProp %v", bADB, bLP)
	}
}

func TestInducedGraphConnectsRootsToLeaves(t *testing.T) {
	schema := hdg.NewSchemaTree("t")
	recs := []hdg.Record{{Root: 0, Nei: []graph.VertexID{0, 2, 3}, Type: 0}}
	h, err := hdg.Build(schema, []graph.VertexID{0}, recs)
	if err != nil {
		t.Fatal(err)
	}
	g := InducedGraph(h, 4)
	if !g.HasEdge(0, 2) || !g.HasEdge(0, 3) || !g.HasEdge(2, 0) {
		t.Fatal("induced graph missing root-leaf edges")
	}
	if g.HasEdge(0, 0) || g.HasEdge(2, 3) {
		t.Fatal("induced graph has spurious edges")
	}
}

// Property: Rebalance never loses or duplicates vertices and keeps
// assignments in range.
func TestRebalanceAssignmentValidQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(50)
		k := 2 + rng.Intn(3)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()
		p := Hash(n, k)
		cost := make([]float64, n)
		for i := range cost {
			cost[i] = rng.Float64() * 10
		}
		a := &ADB{Threshold: 1.01, NumPlans: 3, Seed: seed}
		got := a.Rebalance(g, p, cost)
		if len(got.Assign) != n {
			return false
		}
		for _, part := range got.Assign {
			if part < 0 || int(part) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHDGCostFeaturesMAGNNExample(t *testing.T) {
	// The paper's §5 example: for vertex A in MAGNN with feature dim 20,
	// n1=1, n2=4, m1=m2=60 (3 vertices × 20), so f = n1·m1 + n2·m2 = 300.
	schema := hdg.NewSchemaTree("MP1", "MP2")
	recs := []hdg.Record{
		{Root: 0, Nei: []graph.VertexID{0, 3, 2}, Type: 0},
		{Root: 0, Nei: []graph.VertexID{0, 4, 1}, Type: 1},
		{Root: 0, Nei: []graph.VertexID{0, 5, 6}, Type: 1},
		{Root: 0, Nei: []graph.VertexID{0, 7, 6}, Type: 1},
		{Root: 0, Nei: []graph.VertexID{0, 7, 8}, Type: 1},
	}
	h, err := hdg.Build(schema, []graph.VertexID{0}, recs)
	if err != nil {
		t.Fatal(err)
	}
	feats := HDGCostFeatures(h, 20)
	if len(feats) != 1 || len(feats[0]) != 2 {
		t.Fatalf("features shape wrong: %v", feats)
	}
	// n1·m1 = 1·60 = 60; n2·m2 = 4·60 = 240.
	if feats[0][0] != 60 || feats[0][1] != 240 {
		t.Fatalf("features = %v, want [60 240]", feats[0])
	}
	if feats[0][0]+feats[0][1] != 300 {
		t.Fatal("total should match the paper's f(A) = 300")
	}
}

func TestLabelPropDeterministic(t *testing.T) {
	d := dataset.RedditLike(dataset.Config{Scale: 0.05, Seed: 20})
	a := LabelProp(d.Graph, 4, 3, 1.2, 7)
	b := LabelProp(d.Graph, 4, 3, 1.2, 7)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("LabelProp must be deterministic for a fixed seed")
		}
	}
}

func TestEdgeCutSinglePartition(t *testing.T) {
	d := dataset.RedditLike(dataset.Config{Scale: 0.02, Seed: 21})
	p := Hash(d.Graph.NumVertices(), 1)
	if EdgeCut(d.Graph, p) != 0 {
		t.Fatal("one partition cuts no edges")
	}
}

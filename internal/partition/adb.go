package partition

import (
	"math"

	"repro/internal/graph"
	"repro/internal/hdg"
	"repro/internal/tensor"
)

// CostSample is one observed training-cost log entry for a root vertex:
// the per-type metric products n_t·m_t (§5: n_t = number of neighbors of
// type t, m_t = size of each type-t neighbor instance) and the measured
// cost.
type CostSample struct {
	Features []float64
	Cost     float64
}

// CostModel is the polynomial cost function f = c_0 + Σ_t c_t·(n_t·m_t)
// learned by regression from sampled running logs (§6's ADB component).
type CostModel struct {
	Coef []float64 // Coef[0] is the intercept
}

// Predict evaluates the model on one feature vector.
func (m CostModel) Predict(features []float64) float64 {
	y := m.Coef[0]
	for i, x := range features {
		y += m.Coef[i+1] * x
	}
	return y
}

// FitCostModel fits the polynomial by ordinary least squares over the
// samples (normal equations solved by Gaussian elimination with partial
// pivoting). numFeatures is the metric-set size (one per neighbor type).
func FitCostModel(samples []CostSample, numFeatures int) CostModel {
	d := numFeatures + 1
	// Accumulate XᵀX and Xᵀy.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for _, s := range samples {
		row[0] = 1
		copy(row[1:], s.Features)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * s.Cost
		}
	}
	// Ridge term for numerical stability on degenerate sample sets.
	for i := 0; i < d; i++ {
		xtx[i][i] += 1e-6
	}
	coef := solveLinear(xtx, xty)
	return CostModel{Coef: coef}
}

// solveLinear solves Ax = b in place by Gaussian elimination with partial
// pivoting; A must be square.
func solveLinear(a [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		p := a[col][col]
		if p == 0 {
			continue
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / p
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		if a[r][r] != 0 {
			x[r] = sum / a[r][r]
		}
	}
	return x
}

// HDGCostFeatures computes, for every root of h, the metric vector
// (n_t·m_t) per neighbor type — the paper's MAGNN example: n_1·m_1 where
// n_1 is the metapath-instance count and m_1 the instance size times the
// feature dimension.
func HDGCostFeatures(h *hdg.HDG, featureDim int) [][]float64 {
	T := h.NumTypes()
	out := make([][]float64, h.NumRoots())
	for r := range out {
		feats := make([]float64, T)
		for t := 0; t < T; t++ {
			lo, hi := h.Instances(r, t)
			n := float64(hi - lo)
			var leaves int
			for i := lo; i < hi; i++ {
				leaves += len(h.Leaves(int(i)))
			}
			m := 0.0
			if hi > lo {
				m = float64(leaves) / n * float64(featureDim)
			}
			feats[t] = n * m
		}
		out[r] = feats
	}
	return out
}

// InducedGraph connects every root of h to its leaf vertices — the data
// dependencies that matter for synchronisation, since only roots and leaves
// are ever replicated across partitions (§5, Fig. 11b).
func InducedGraph(h *hdg.HDG, numVertices int) *graph.Graph {
	b := graph.NewBuilder(numVertices)
	for r, root := range h.Roots {
		seen := map[graph.VertexID]bool{}
		for t := 0; t < h.NumTypes(); t++ {
			lo, hi := h.Instances(r, t)
			for i := lo; i < hi; i++ {
				for _, leaf := range h.Leaves(int(i)) {
					if leaf != root && !seen[leaf] {
						seen[leaf] = true
						b.AddUndirected(root, leaf)
					}
				}
			}
		}
	}
	return b.Build()
}

// ADB is the application-driven balancer: given per-root predicted costs
// and the induced dependency graph, it generates NumPlans balancing plans
// (BFS-grown retention sets in overloaded partitions, §5) and applies the
// plan that cuts the fewest induced edges.
type ADB struct {
	// Threshold is the balance factor above which rebalancing triggers
	// (§6: "once the balance factor exceeds a pre-defined threshold").
	Threshold float64
	// NumPlans is the number of candidate plans (§6 uses 5).
	NumPlans int
	// Seed drives BFS seed selection.
	Seed uint64
}

// DefaultADB returns the §6 configuration: 5 plans, trigger at 1.05.
func DefaultADB() *ADB { return &ADB{Threshold: 1.05, NumPlans: 5, Seed: 42} }

// Rebalance returns a new partitioning with migrated HDG roots, or the
// input unchanged when the balance factor is under the threshold. induced
// is the root-leaf dependency graph; cost is the per-vertex predicted
// training cost.
func (a *ADB) Rebalance(induced *graph.Graph, p *Partitioning, cost []float64) *Partitioning {
	validateCost(p, cost)
	loads := p.Loads(cost)
	if BalanceFactor(loads) <= a.Threshold {
		return p
	}
	var total float64
	for _, l := range loads {
		total += l
	}
	target := total / float64(p.K)

	rng := tensor.NewRNG(a.Seed)
	best := p
	bestCut := int64(math.MaxInt64)
	plans := a.NumPlans
	if plans <= 0 {
		plans = 5
	}
	parts := p.Parts()
	for plan := 0; plan < plans; plan++ {
		cand := a.buildPlan(induced, p, parts, cost, loads, target, rng)
		cut := EdgeCut(induced, cand)
		if cut < bestCut {
			best, bestCut = cand, cut
		}
	}
	return best
}

// buildPlan grows a BFS retention set within each overloaded partition up
// to the target budget; the excluded vertices become migration candidates
// and are assigned to underloaded partitions.
func (a *ADB) buildPlan(induced *graph.Graph, p *Partitioning, parts [][]graph.VertexID, cost, loads []float64, target float64, rng *tensor.RNG) *Partitioning {
	out := p.Clone()
	newLoads := append([]float64(nil), loads...)

	var migrants []graph.VertexID
	for part := 0; part < p.K; part++ {
		if loads[part] <= target*1.0001 || len(parts[part]) == 0 {
			continue
		}
		inPart := make(map[graph.VertexID]bool, len(parts[part]))
		for _, v := range parts[part] {
			inPart[v] = true
		}
		seed := parts[part][rng.Intn(len(parts[part]))]
		// BFS over the induced graph restricted to this partition, in
		// greedy budget order.
		kept := make(map[graph.VertexID]bool)
		budget := 0.0
		queue := []graph.VertexID{seed}
		kept[seed] = true
		budget += cost[seed]
		for len(queue) > 0 && budget < target {
			v := queue[0]
			queue = queue[1:]
			for _, u := range induced.OutNeighbors(v) {
				if !inPart[u] || kept[u] {
					continue
				}
				if budget+cost[u] > target {
					continue
				}
				kept[u] = true
				budget += cost[u]
				queue = append(queue, u)
			}
		}
		for _, v := range parts[part] {
			if !kept[v] {
				migrants = append(migrants, v)
				newLoads[part] -= cost[v]
			}
		}
	}
	// Assign migrants to the least-loaded partition one by one.
	for _, v := range migrants {
		dst := 0
		for part := 1; part < p.K; part++ {
			if newLoads[part] < newLoads[dst] {
				dst = part
			}
		}
		out.Assign[v] = int32(dst)
		newLoads[dst] += cost[v]
	}
	return out
}

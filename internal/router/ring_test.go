package router

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// TestRingDeterministicAndBalanced: the ring is a pure function of
// (replicas, vnodes) — two routers over the same fleet agree on every
// vertex — and virtual nodes keep the shards roughly even.
func TestRingDeterministicAndBalanced(t *testing.T) {
	const vertices = 30000
	a := newRing(3, 0)
	b := newRing(3, 0)
	counts := make([]int, 3)
	for v := 0; v < vertices; v++ {
		ra, ok := a.owner(graph.VertexID(v), nil)
		if !ok {
			t.Fatal("owner reported an empty ring")
		}
		rb, _ := b.owner(graph.VertexID(v), nil)
		if ra != rb {
			t.Fatalf("vertex %d: rings disagree (%d vs %d) — routing is not deterministic", v, ra, rb)
		}
		counts[ra]++
	}
	for rep, n := range counts {
		if n < vertices*15/100 {
			t.Fatalf("replica %d owns %d of %d vertices — ring badly unbalanced: %v",
				rep, n, vertices, counts)
		}
	}
}

// TestRingFailoverMovesOnlyTheDeadShard: evicting a replica reassigns its
// vertices to ring successors and nothing else — the consistent-hashing
// property the embedding caches depend on.
func TestRingFailoverMovesOnlyTheDeadShard(t *testing.T) {
	r := newRing(3, 0)
	dead1 := []bool{true, false, true}
	allUp := []bool{true, true, true}
	moved := 0
	for v := 0; v < 5000; v++ {
		prim, _ := r.owner(graph.VertexID(v), nil)
		cur, _ := r.owner(graph.VertexID(v), dead1)
		if prim != 1 {
			if cur != prim {
				t.Fatalf("vertex %d moved from healthy replica %d to %d when replica 1 died", v, prim, cur)
			}
			continue
		}
		if cur == 1 {
			t.Fatalf("vertex %d still routed to the dead replica", v)
		}
		moved++
		// Revival moves the shard straight back.
		if back, _ := r.owner(graph.VertexID(v), allUp); back != prim {
			t.Fatalf("vertex %d: owner %d after revival, want %d", v, back, prim)
		}
	}
	if moved == 0 {
		t.Fatal("replica 1 owned no vertices — the failover path was never exercised")
	}
}

// TestRingSuccessors: successors are distinct, start at the primary, and
// sort dead replicas last (they are failover targets of last resort).
func TestRingSuccessors(t *testing.T) {
	r := newRing(4, 0)
	for v := 0; v < 200; v++ {
		succ := r.successors(graph.VertexID(v), 3, nil)
		if len(succ) != 3 {
			t.Fatalf("vertex %d: %d successors, want 3", v, len(succ))
		}
		seen := map[int]bool{}
		for _, rep := range succ {
			if seen[rep] {
				t.Fatalf("vertex %d: duplicate replica %d in successors %v", v, rep, succ)
			}
			seen[rep] = true
		}
		if prim, _ := r.owner(graph.VertexID(v), nil); succ[0] != prim {
			t.Fatalf("vertex %d: successors %v do not start at primary %d", v, succ, prim)
		}
	}
	// k is capped at the fleet size; a dead replica sorts behind every
	// alive one.
	succ := r.successors(7, 10, []bool{false, true, true, true})
	if len(succ) != 4 {
		t.Fatalf("successors(k=10) over 4 replicas returned %v", succ)
	}
	if succ[3] != 0 {
		t.Fatalf("dead replica 0 must sort last: %v", succ)
	}
}

// TestHotTrackerLifecycle: a vertex turns hot at the in-window threshold,
// stays hot through the following window, and cools after an idle gap.
func TestHotTrackerLifecycle(t *testing.T) {
	const window = 80 * time.Millisecond
	h := newHotTracker(3, window)
	if h.touch(1) || h.touch(1) {
		t.Fatal("vertex below the threshold reported hot")
	}
	if !h.touch(1) {
		t.Fatal("third arrival in the window must turn the vertex hot")
	}
	if !h.touch(1) {
		t.Fatal("hot vertex cooled while still in its window")
	}
	if h.touch(2) {
		t.Fatal("cold vertex reported hot")
	}
	time.Sleep(window + window/4)
	if !h.touch(1) {
		t.Fatal("hotness must carry into the following window (no cache flapping)")
	}
	time.Sleep(2*window + window/4)
	if h.touch(1) {
		t.Fatal("hotness survived a two-window idle gap")
	}

	if newHotTracker(0, window) != nil {
		t.Fatal("threshold 0 must disable tracking")
	}
	var disabled *hotTracker
	if disabled.touch(3) {
		t.Fatal("nil tracker must report cold")
	}
	if disabled.hotCount() != 0 {
		t.Fatal("nil tracker must report zero hot vertices")
	}
}

// TestAdmissionShedAndRecover: one over-SLO observation trips the gate
// immediately; two idle windows drain the estimate and admission resumes —
// the recovery property a cumulative histogram cannot give.
func TestAdmissionShedAndRecover(t *testing.T) {
	const window = 60 * time.Millisecond
	a := newAdmission(5*time.Millisecond, window)
	if _, over := a.overloaded(); over {
		t.Fatal("empty windows must admit")
	}
	a.observe(40 * time.Millisecond)
	p99, over := a.overloaded()
	if !over || p99 <= 5*time.Millisecond {
		t.Fatalf("after a 40ms observation against a 5ms SLO: p99=%v over=%v", p99, over)
	}
	time.Sleep(2*window + window/2)
	if p99, over := a.overloaded(); over {
		t.Fatalf("admission did not recover after an idle gap: p99=%v", p99)
	}

	// No SLO configured: never sheds, whatever the latency.
	n := newAdmission(0, window)
	n.observe(time.Hour)
	if _, over := n.overloaded(); over {
		t.Fatal("SLO 0 must disable latency shedding")
	}
}

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nau"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// trainedGCN mirrors the serve-package helper: a briefly trained GCN with
// its trainer and dataset, for parity checks against Trainer.Predict.
func trainedGCN(t *testing.T, scale float64) (*nau.Trainer, *dataset.Dataset) {
	t.Helper()
	d := dataset.RedditLike(dataset.Config{Scale: scale, Seed: 1})
	model := models.NewGCN(d.FeatureDim(), 16, d.NumClasses, tensor.NewRNG(1))
	tr := nau.NewTrainerWith(model, nau.TrainerOptions{
		Graph: d.Graph, Features: d.Features, Labels: d.Labels,
		TrainMask: d.TrainMask, Seed: 1,
	})
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := tr.Epoch(); err != nil {
			t.Fatalf("epoch: %v", err)
		}
	}
	return tr, d
}

// newReplicaServer stands up one in-process InferenceServer replica with
// its own registry — each replica of a fleet has private caches and
// metrics, exactly like separate processes.
func newReplicaServer(t *testing.T, tr *nau.Trainer, d *dataset.Dataset, opts serve.Options) (*serve.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	opts.Model = tr.Model
	opts.Graph = d.Graph
	opts.Features = d.Features
	opts.Engine = tr.Engine
	opts.Metrics = reg
	s, err := serve.New(opts)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Close)
	return s, reg
}

func newTestRouter(t *testing.T, opts Options) (*Router, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	opts.Metrics = reg
	rt, err := New(opts)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt, reg
}

// assertBitIdentical checks every reply row against whole-graph logits.
func assertBitIdentical(t *testing.T, reply *serve.Reply, whole *tensor.Tensor) {
	t.Helper()
	for _, r := range reply.Results {
		if len(r.Logits) != whole.Cols() {
			t.Fatalf("vertex %d: %d logits, want %d", r.Vertex, len(r.Logits), whole.Cols())
		}
		for j, x := range r.Logits {
			if want := whole.At(int(r.Vertex), j); x != want {
				t.Fatalf("vertex %d logit %d: routed %v != Predict %v (not bit-identical)",
					r.Vertex, j, x, want)
			}
		}
	}
}

// fakeRep is a scriptable Querier replica: per-vertex call counts, optional
// latency, optional injected failure. Health probes (empty queries) go
// through Query like everything else.
type fakeRep struct {
	version int64
	delay   time.Duration

	mu      sync.Mutex
	failing bool
	calls   map[graph.VertexID]int
}

func newFakeRep(version int64, delay time.Duration) *fakeRep {
	return &fakeRep{version: version, delay: delay, calls: map[graph.VertexID]int{}}
}

func (f *fakeRep) Query(ctx context.Context, vertices []graph.VertexID) (*serve.Reply, error) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return nil, errors.New("fake replica: injected failure")
	}
	results := make([]serve.Result, len(vertices))
	for i, v := range vertices {
		f.calls[v]++
		results[i] = serve.Result{Vertex: v, Logits: []float32{float32(v), -float32(v)}}
	}
	return &serve.Reply{ModelVersion: f.version, Results: results}, nil
}

func (f *fakeRep) ModelVersion() int64 { return f.version }
func (f *fakeRep) Close()              {}

func (f *fakeRep) setFailing(b bool) {
	f.mu.Lock()
	f.failing = b
	f.mu.Unlock()
}

func (f *fakeRep) callCount(v graph.VertexID) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[v]
}

func fleet(reps ...serve.Querier) []Replica {
	out := make([]Replica, len(reps))
	for i, q := range reps {
		out[i] = Replica{Name: fmt.Sprintf("fake-%d", i), Querier: q}
	}
	return out
}

// --- HTTP plumbing shared by the smoke tests ---------------------------

func postQuery(t *testing.T, baseURL string, verts []graph.VertexID) (*serve.Reply, int, string) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"vertices": verts})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Code string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, resp.StatusCode, er.Code
	}
	var reply serve.Reply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return &reply, resp.StatusCode, ""
}

func metricsCounters(t *testing.T, baseURL string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics?format=json")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics json: %v", err)
	}
	return snap.Counters
}

// --- the RouterSmoke suite (make router-smoke runs exactly these) ------

// TestRouterSmokeBitParity: the tentpole's correctness criterion, in
// process. Routed answers — including hot vertices spread over overflow
// replicas — are bit-identical to a whole-graph Trainer.Predict, with reply
// rows in input order and duplicates preserved.
func TestRouterSmokeBitParity(t *testing.T) {
	tr, d := trainedGCN(t, 0.05)
	whole, err := tr.Predict()
	if err != nil {
		t.Fatal(err)
	}
	var reps []Replica
	for i := 0; i < 3; i++ {
		s, _ := newReplicaServer(t, tr, d, serve.Options{FlushInterval: time.Millisecond})
		reps = append(reps, Replica{Name: fmt.Sprintf("replica-%d", i), Querier: s})
	}
	rt, reg := newTestRouter(t, Options{
		Replicas:          reps,
		HotThreshold:      2, // the hub below turns hot almost immediately
		HotWindow:         10 * time.Second,
		ReplicationFactor: 3,
	})

	const hub = 7
	n := d.Graph.NumVertices()
	ctx := context.Background()
	for round := 0; round < 12; round++ {
		verts := []graph.VertexID{hub}
		for k := 0; k < 6; k++ {
			verts = append(verts, graph.VertexID((round*31+k*17)%n))
		}
		verts = append(verts, verts[1], hub) // duplicates must round-trip
		reply, err := rt.Query(ctx, verts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(reply.Results) != len(verts) {
			t.Fatalf("round %d: %d results for %d vertices", round, len(reply.Results), len(verts))
		}
		for i, v := range verts {
			if reply.Results[i].Vertex != v {
				t.Fatalf("round %d: result %d is vertex %d, want %d (input order violated)",
					round, i, reply.Results[i].Vertex, v)
			}
		}
		assertBitIdentical(t, reply, whole)
	}
	if reg.Counter("router_hot_routed_total").Load() == 0 {
		t.Fatal("hub vertex never took the hot-replication path — the parity claim above did not cover it")
	}
}

// TestRouterSmokeCacheLocality: the tentpole's capacity argument, over real
// loopback HTTP. With a per-replica embedding cache too small for the whole
// working set but big enough for one shard, consistent-hash routing keeps
// every replica's cache hit rate above the single unsharded server's — and
// the routed answers stay bit-identical to that single server's.
//
// The graph is a sparse ring lattice and the sweep strides over it so the
// per-shard working sets are mostly disjoint; the working set is probed
// empirically (no magic row counts).
func TestRouterSmokeCacheLocality(t *testing.T) {
	const (
		n      = 2880 // vertices in the lattice
		stride = 8    // sweep every 8th vertex: shard closures stay disjoint
		sweepN = 360  // distinct query vertices per round
		batch  = 8    // vertices per request
		rounds = 3
	)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddUndirected(graph.VertexID(v), graph.VertexID((v+1)%n))
		b.AddUndirected(graph.VertexID(v), graph.VertexID((v+5)%n))
	}
	g := b.Build()
	rng := tensor.NewRNG(7)
	feats := tensor.RandN(rng, 0.5, n, 12)
	model := models.NewGCN(12, 8, 4, rng)

	newSrv := func(cacheRows int) (*serve.Server, *metrics.Registry) {
		t.Helper()
		reg := metrics.NewRegistry()
		s, err := serve.New(serve.Options{
			Model: model, Graph: g, Features: feats,
			CacheCapacity: cacheRows, FlushInterval: time.Millisecond, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s, reg
	}
	sweepBatches := func() [][]graph.VertexID {
		var out [][]graph.VertexID
		for lo := 0; lo < sweepN; lo += batch {
			verts := make([]graph.VertexID, 0, batch)
			for k := 0; k < batch; k++ {
				verts = append(verts, graph.VertexID((lo+k)*stride))
			}
			out = append(out, verts)
		}
		return out
	}()
	hitRate := func(c map[string]int64) float64 {
		h, m := c["serve_cache_hits_total"], c["serve_cache_misses_total"]
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}
	ctx := context.Background()

	// Probe the sweep's working set on an effectively unbounded cache; this
	// server doubles as the single whole-graph parity reference.
	reference, _ := newSrv(1 << 20)
	for _, verts := range sweepBatches {
		if _, err := reference.Query(ctx, verts); err != nil {
			t.Fatal(err)
		}
	}
	working := reference.CacheLen()
	cacheRows := working / 2
	if cacheRows < 3*batch {
		t.Fatalf("working set %d rows — sweep too small to exercise the cache", working)
	}

	// Baseline: one unsharded server whose cache cannot hold the sweep.
	single, singleReg := newSrv(cacheRows)
	for r := 0; r < rounds; r++ {
		for _, verts := range sweepBatches {
			if _, err := single.Query(ctx, verts); err != nil {
				t.Fatal(err)
			}
		}
	}
	baseRate := hitRate(singleReg.Snapshot().Counters)

	// Sharded: three replicas with the same too-small cache, each behind a
	// real loopback listener, fronted by the router's own HTTP surface.
	var reps []Replica
	var repURLs []string
	for i := 0; i < 3; i++ {
		s, _ := newSrv(cacheRows)
		addr, shutdown, err := s.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = shutdown() })
		c := serve.NewClient(addr, serve.ClientOptions{})
		t.Cleanup(c.Close)
		reps = append(reps, Replica{Name: addr, Querier: c})
		repURLs = append(repURLs, "http://"+addr)
	}
	rt, _ := newTestRouter(t, Options{Replicas: reps})
	rtAddr, rtShutdown, err := rt.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rtShutdown() })
	rtURL := "http://" + rtAddr

	for r := 0; r < rounds; r++ {
		for _, verts := range sweepBatches {
			reply, code, errCode := postQuery(t, rtURL, verts)
			if reply == nil {
				t.Fatalf("round %d: routed query failed: HTTP %d code=%q", r, code, errCode)
			}
			// Routed-vs-single bit parity, over the wire.
			want, err := reference.Query(ctx, verts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range verts {
				got, ref := reply.Results[i], want.Results[i]
				if got.Vertex != ref.Vertex || got.Class != ref.Class {
					t.Fatalf("round %d vertex %d: routed (%d,%d) != single (%d,%d)",
						r, verts[i], got.Vertex, got.Class, ref.Vertex, ref.Class)
				}
				for j := range ref.Logits {
					if got.Logits[j] != ref.Logits[j] {
						t.Fatalf("round %d vertex %d logit %d: routed %v != single %v (not bit-identical)",
							r, verts[i], j, got.Logits[j], ref.Logits[j])
					}
				}
			}
		}
	}

	// Per-replica cache hit rate, read the way an operator would: each
	// replica's /metrics?format=json.
	for i, u := range repURLs {
		if r := hitRate(metricsCounters(t, u)); r <= baseRate {
			t.Errorf("replica %d hit rate %.3f <= unsharded baseline %.3f — sharding lost cache locality",
				i, r, baseRate)
		}
	}
	rc := metricsCounters(t, rtURL)
	if want := int64(rounds * len(sweepBatches)); rc["router_requests_total"] < want {
		t.Errorf("router_requests_total = %d, want >= %d", rc["router_requests_total"], want)
	}
	if rc["router_shed_total"] != 0 {
		t.Errorf("router_shed_total = %d during an unloaded sweep", rc["router_shed_total"])
	}
}

// TestRouterSmokeChaos: kill 1 of 3 HTTP replicas in the middle of a
// concurrent burst. Every request must be answered (correctly) or fail with
// a typed error within its deadline — the ring retry absorbs the failure —
// and the dead replica must be evicted.
func TestRouterSmokeChaos(t *testing.T) {
	tr, d := trainedGCN(t, 0.05)
	whole, err := tr.Predict()
	if err != nil {
		t.Fatal(err)
	}
	n := d.Graph.NumVertices()

	var reps []Replica
	var servers []*serve.Server
	var shutdowns []func() error
	for i := 0; i < 3; i++ {
		s, _ := newReplicaServer(t, tr, d, serve.Options{FlushInterval: time.Millisecond})
		addr, shutdown, err := s.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = shutdown() })
		c := serve.NewClient(addr, serve.ClientOptions{})
		t.Cleanup(c.Close)
		servers = append(servers, s)
		shutdowns = append(shutdowns, shutdown)
		reps = append(reps, Replica{Name: addr, Querier: c})
	}
	rt, reg := newTestRouter(t, Options{
		Replicas:         reps,
		FailureThreshold: 1,
		HealthEvery:      50 * time.Millisecond,
	})

	const (
		workers   = 6
		perWorker = 20
	)
	type outcome struct {
		err   error
		reply *serve.Reply
		verts []graph.VertexID
	}
	results := make(chan outcome, workers*perWorker)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				verts := []graph.VertexID{
					graph.VertexID((w*37 + k*11) % n),
					graph.VertexID((w*53 + k*29 + 1) % n),
					graph.VertexID((w*13 + k*71 + 2) % n),
					graph.VertexID((w*97 + k*41 + 3) % n),
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				reply, err := rt.Query(ctx, verts)
				cancel()
				completed.Add(1)
				results <- outcome{err: err, reply: reply, verts: verts}
			}
		}(w)
	}

	// Mid-burst — after a fixed fraction of requests has completed, so the
	// kill always lands with traffic still in flight — kill replica 1:
	// reject in-flight queries, then drop the listener so new dials are
	// refused too.
	for completed.Load() < workers*perWorker/4 {
		time.Sleep(time.Millisecond)
	}
	servers[1].Close()
	_ = shutdowns[1]()

	wg.Wait()
	close(results)
	succeeded, failed := 0, 0
	for o := range results {
		if o.err != nil {
			// "Answered or fails typed": the only acceptable failures are
			// the tier's typed errors.
			var overload *serve.OverloadError
			if !errors.As(o.err, &overload) && !errors.Is(o.err, serve.ErrClosed) &&
				!errors.Is(o.err, context.DeadlineExceeded) {
				t.Fatalf("untyped failure during replica kill: %v", o.err)
			}
			failed++
			continue
		}
		succeeded++
		if len(o.reply.Results) != len(o.verts) {
			t.Fatalf("short reply: %d results for %d vertices", len(o.reply.Results), len(o.verts))
		}
		assertBitIdentical(t, o.reply, whole)
	}
	if succeeded < workers*perWorker/2 {
		t.Fatalf("only %d/%d requests survived the replica kill (failed typed: %d)",
			succeeded, workers*perWorker, failed)
	}
	if rt.HealthyReplicas() != 2 {
		t.Fatalf("healthy replicas = %d after the kill, want 2", rt.HealthyReplicas())
	}
	if reg.Counter("router_evictions_total").Load() == 0 {
		t.Fatal("the dead replica was never evicted from the ring")
	}
	if reg.Counter("router_retries_total").Load() == 0 {
		t.Fatal("no shard ever failed over — the kill did not exercise the retry path")
	}
	// The fleet keeps answering afterwards.
	reply, err := rt.Query(context.Background(), []graph.VertexID{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("post-kill query: %v", err)
	}
	assertBitIdentical(t, reply, whole)
}

// TestRouterSmokeOverload: a replica slower than the SLO trips the p99
// admission gate — typed *OverloadError in process, HTTP 429 with a shed
// counter on the wire — and admission recovers once the windows drain.
func TestRouterSmokeOverload(t *testing.T) {
	slow := newFakeRep(1, 20*time.Millisecond)
	rt, _ := newTestRouter(t, Options{
		Replicas:  fleet(slow),
		SLO:       5 * time.Millisecond,
		SLOWindow: 300 * time.Millisecond,
	})
	ts := httptest.NewServer(rt.Mux())
	defer ts.Close()
	ctx := context.Background()

	// First request is admitted (no latency estimate yet) and observed.
	if _, err := rt.Query(ctx, []graph.VertexID{1}); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Now the windowed p99 (~20ms) breaks the 5ms SLO: shed, typed.
	var overload *serve.OverloadError
	if _, err := rt.Query(ctx, []graph.VertexID{2}); !errors.As(err, &overload) {
		t.Fatalf("err = %v, want *serve.OverloadError", err)
	}
	if overload.P99 <= overload.SLO || overload.SLO != 5*time.Millisecond {
		t.Fatalf("overload fields: %+v", overload)
	}
	// Same gate on the HTTP surface: 429 with the overload code.
	if _, code, errCode := postQuery(t, ts.URL, []graph.VertexID{3}); code != http.StatusTooManyRequests || errCode != "overload" {
		t.Fatalf("HTTP shed: status %d code %q, want 429 %q", code, errCode, "overload")
	}
	if c := metricsCounters(t, ts.URL); c["router_shed_total"] < 2 {
		t.Fatalf("router_shed_total = %d, want >= 2", c["router_shed_total"])
	}
	if got := slow.callCount(3); got != 0 {
		t.Fatalf("shed request still reached the replica (%d calls)", got)
	}

	// Shed requests are never observed, so two idle windows drain the
	// estimate and the gate reopens.
	time.Sleep(750 * time.Millisecond)
	if _, err := rt.Query(ctx, []graph.VertexID{4}); err != nil {
		t.Fatalf("admission did not recover after idle windows: %v", err)
	}
}

// TestRouterSmokeInflightCap: the hard concurrency gate sheds typed before
// touching any replica, independent of the latency estimate.
func TestRouterSmokeInflightCap(t *testing.T) {
	slow := newFakeRep(1, 150*time.Millisecond)
	rt, reg := newTestRouter(t, Options{Replicas: fleet(slow), MaxInflight: 1})
	ctx := context.Background()

	started := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		close(started)
		_, err := rt.Query(ctx, []graph.VertexID{1})
		first <- err
	}()
	<-started
	time.Sleep(30 * time.Millisecond) // the first request now holds the slot

	var overload *serve.OverloadError
	if _, err := rt.Query(ctx, []graph.VertexID{2}); !errors.As(err, &overload) {
		t.Fatalf("err = %v, want *serve.OverloadError", err)
	}
	if overload.MaxInflight != 1 || overload.Inflight <= 1 {
		t.Fatalf("overload fields: %+v", overload)
	}
	if err := <-first; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	if reg.Counter("router_shed_total").Load() == 0 {
		t.Fatal("router_shed_total not incremented")
	}
}

// TestRouterSmokeHotOverflow: a hammered vertex crosses the hot threshold
// and its traffic spreads over ReplicationFactor replicas, while cold
// vertices stay pinned to their single consistent-hash owner.
func TestRouterSmokeHotOverflow(t *testing.T) {
	reps := []*fakeRep{newFakeRep(1, 0), newFakeRep(1, 0), newFakeRep(1, 0)}
	rt, reg := newTestRouter(t, Options{
		Replicas:          fleet(reps[0], reps[1], reps[2]),
		HotThreshold:      3,
		HotWindow:         10 * time.Second, // no rotation mid-test
		ReplicationFactor: 2,
	})
	ctx := context.Background()

	const hub, cold = 7, 301
	for i := 0; i < 40; i++ {
		if _, err := rt.Query(ctx, []graph.VertexID{hub}); err != nil {
			t.Fatalf("hub query %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ { // stays below the threshold
		if _, err := rt.Query(ctx, []graph.VertexID{cold}); err != nil {
			t.Fatalf("cold query %d: %v", i, err)
		}
	}

	hubOwners, coldOwners := 0, 0
	for _, f := range reps {
		if f.callCount(hub) > 0 {
			hubOwners++
		}
		if f.callCount(cold) > 0 {
			coldOwners++
		}
	}
	if hubOwners < 2 {
		t.Fatalf("hot vertex served by %d replica(s), want >= 2 (overflow replication)", hubOwners)
	}
	if coldOwners != 1 {
		t.Fatalf("cold vertex served by %d replicas, want exactly 1 (cache locality)", coldOwners)
	}
	if reg.Counter("router_hot_routed_total").Load() == 0 {
		t.Fatal("router_hot_routed_total not incremented")
	}
}

// TestRouterSmokeRevival: an evicted replica is probed in the background
// and restored to the ring once it answers again, and its shard moves back.
func TestRouterSmokeRevival(t *testing.T) {
	a, b := newFakeRep(1, 0), newFakeRep(1, 0)
	rt, reg := newTestRouter(t, Options{
		Replicas:         fleet(a, b),
		FailureThreshold: 1,
		HealthEvery:      20 * time.Millisecond,
	})
	ctx := context.Background()

	const v = 1
	if _, err := rt.Query(ctx, []graph.VertexID{v}); err != nil {
		t.Fatal(err)
	}
	primary, backup := a, b
	if b.callCount(v) > 0 {
		primary, backup = b, a
	}

	primary.setFailing(true)
	reply, err := rt.Query(ctx, []graph.VertexID{v})
	if err != nil {
		t.Fatalf("query during replica failure: %v (ring retry should have cured it)", err)
	}
	if len(reply.Results) != 1 || reply.Results[0].Vertex != v {
		t.Fatalf("failover reply: %+v", reply)
	}
	if backup.callCount(v) == 0 {
		t.Fatal("failover never reached the backup replica")
	}
	if rt.HealthyReplicas() != 1 || reg.Counter("router_evictions_total").Load() == 0 {
		t.Fatalf("primary not evicted: healthy=%d evictions=%d",
			rt.HealthyReplicas(), reg.Counter("router_evictions_total").Load())
	}

	// Heal the primary; the background prober must restore it.
	primary.setFailing(false)
	deadline := time.Now().Add(2 * time.Second)
	for rt.HealthyReplicas() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("healed replica was never revived by the health prober")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reg.Counter("router_revivals_total").Load() == 0 {
		t.Fatal("router_revivals_total not incremented")
	}
	before := primary.callCount(v)
	if _, err := rt.Query(ctx, []graph.VertexID{v}); err != nil {
		t.Fatal(err)
	}
	if primary.callCount(v) <= before {
		t.Fatal("traffic did not return to the primary after revival")
	}
}

// TestRouterQuerySemantics: the small contracts — empty queries, duplicate
// preservation, the vertex cap, fleet model version, constructor errors.
func TestRouterQuerySemantics(t *testing.T) {
	a, b := newFakeRep(4, 0), newFakeRep(9, 0)
	rt, _ := newTestRouter(t, Options{Replicas: fleet(a, b), MaxQueryVertices: 3})
	ctx := context.Background()

	reply, err := rt.Query(ctx, nil)
	if err != nil || len(reply.Results) != 0 {
		t.Fatalf("empty query: %v %+v", err, reply)
	}
	if reply.ModelVersion != 4 {
		t.Fatalf("fleet model version = %d, want min(4,9) = 4", reply.ModelVersion)
	}
	if rt.ModelVersion() != 4 {
		t.Fatalf("ModelVersion() = %d, want 4", rt.ModelVersion())
	}

	reply, err = rt.Query(ctx, []graph.VertexID{5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.VertexID{5, 5, 9}
	for i, v := range want {
		if reply.Results[i].Vertex != v {
			t.Fatalf("result %d: vertex %d, want %d (duplicates must round-trip in order)",
				i, reply.Results[i].Vertex, v)
		}
	}

	var limitErr *serve.QueryLimitError
	if _, err := rt.Query(ctx, []graph.VertexID{1, 2, 3, 4}); !errors.As(err, &limitErr) {
		t.Fatalf("over cap: err = %v, want *serve.QueryLimitError", err)
	}
	if limitErr.Count != 4 || limitErr.Limit != 3 {
		t.Fatalf("limit fields: %+v", limitErr)
	}

	if _, err := New(Options{}); err == nil {
		t.Fatal("New with no replicas must fail")
	}
	if _, err := New(Options{Replicas: []Replica{{Name: "x"}}}); err == nil {
		t.Fatal("New with a nil Querier must fail")
	}
	rt.Close()
	rt.Close() // idempotent
}

package router

import (
	"sort"

	"repro/internal/graph"
)

// ring is a consistent-hash ring over replica indices. Each replica
// contributes vnodes points (hashes of (replica, vnode)); a vertex hashes
// onto the circle and belongs to the first point clockwise. The map is a
// pure function of (replica count, vnodes): every router over the same
// replica list routes a vertex to the same replica, which is what keeps
// each replica's embedding cache hot on its own shard.
//
// Membership changes are handled by skipping, not rebuilding: owner and
// successors take an alive mask and walk past dead replicas' points, so
// evicting a replica moves only its shard (to the next replica clockwise —
// the consistent-hashing property) and reviving it moves that shard
// straight back.
type ring struct {
	hashes   []uint64 // sorted point hashes
	replicas []int    // replicas[i] owns hashes[i]
	n        int
}

// DefaultVirtualNodes is the per-replica point count. 64 points per replica
// keeps the max/mean shard-size ratio within ~20% for small fleets while
// the ring stays a few KiB.
const DefaultVirtualNodes = 64

// splitmix64 is the finalizer used everywhere in this codebase for cheap
// high-quality hashing of small integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newRing builds the ring for n replicas with vnodes points each
// (<= 0 selects DefaultVirtualNodes).
func newRing(n, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &ring{
		hashes:   make([]uint64, 0, n*vnodes),
		replicas: make([]int, 0, n*vnodes),
		n:        n,
	}
	type point struct {
		h       uint64
		replica int
	}
	pts := make([]point, 0, n*vnodes)
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{splitmix64(uint64(rep)<<32 | uint64(v+1)), rep})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].replica < pts[j].replica // deterministic on (improbable) collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.replicas = append(r.replicas, p.replica)
	}
	return r
}

// start returns the index of the first ring point at or after v's hash.
func (r *ring) start(v graph.VertexID) int {
	h := splitmix64(uint64(uint32(v)) + 0x632be59bd9b4e019)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// owner returns v's primary replica among those marked alive. When every
// replica is dead it falls back to the unfiltered owner (so the caller
// surfaces that replica's typed error instead of inventing one). ok is
// false only for an empty ring.
func (r *ring) owner(v graph.VertexID, alive []bool) (replica int, ok bool) {
	if len(r.hashes) == 0 {
		return 0, false
	}
	i := r.start(v)
	for k := 0; k < len(r.hashes); k++ {
		rep := r.replicas[(i+k)%len(r.hashes)]
		if alive == nil || alive[rep] {
			return rep, true
		}
	}
	return r.replicas[i], true
}

// successors returns up to k distinct replicas for v in ring order starting
// at its primary, preferring alive replicas (dead ones are appended only if
// fewer than k alive replicas exist). The slice order is deterministic —
// the hot-shard spreader round-robins over it.
func (r *ring) successors(v graph.VertexID, k int, alive []bool) []int {
	if len(r.hashes) == 0 || k <= 0 {
		return nil
	}
	if k > r.n {
		k = r.n
	}
	i := r.start(v)
	out := make([]int, 0, k)
	seen := make([]bool, r.n)
	var deadOrder []int
	for step := 0; step < len(r.hashes) && len(out) < k; step++ {
		rep := r.replicas[(i+step)%len(r.hashes)]
		if seen[rep] {
			continue
		}
		seen[rep] = true
		if alive == nil || alive[rep] {
			out = append(out, rep)
		} else {
			deadOrder = append(deadOrder, rep)
		}
	}
	for _, rep := range deadOrder {
		if len(out) >= k {
			break
		}
		out = append(out, rep)
	}
	return out
}

package router

import (
	"sync"
	"time"

	"repro/internal/graph"
)

// hotTracker finds the vertices whose query frequency justifies overflow
// replication. Power-law traffic (hubs of a PowerLawGraph, celebrity
// vertices) concentrates on a few IDs; pinning those to one consistent-hash
// owner turns that replica into the fleet's straggler. The tracker counts
// per-vertex arrivals in rotating windows; a vertex that crossed the
// threshold in the last completed (or current) window is "hot" and the
// router spreads its queries round-robin over its primary plus the next
// replicas on the ring. Each overflow replica then computes and caches the
// vertex once — replication cost is one cache row per replica, bit-exact by
// construction because every replica serves the same model over the same
// graph.
//
// Memory is bounded: at most maxTracked counters per window; beyond that,
// new vertices are not tracked (a vertex hot enough to matter shows up long
// before the table fills).
type hotTracker struct {
	threshold int
	window    time.Duration
	maxTrack  int

	mu      sync.Mutex
	counts  map[graph.VertexID]int
	hot     map[graph.VertexID]struct{} // crossed threshold in the previous window
	rotated time.Time
}

// Defaults for hot-shard overflow replication.
const (
	// DefaultHotWindow is the frequency-measurement window.
	DefaultHotWindow = time.Second
	// defaultMaxTracked bounds the per-window counter table.
	defaultMaxTracked = 1 << 16
)

// newHotTracker returns a tracker marking vertices hot at threshold
// arrivals per window. threshold <= 0 disables tracking (touch always
// reports cold).
func newHotTracker(threshold int, window time.Duration) *hotTracker {
	if threshold <= 0 {
		return nil
	}
	if window <= 0 {
		window = DefaultHotWindow
	}
	return &hotTracker{
		threshold: threshold,
		window:    window,
		maxTrack:  defaultMaxTracked,
		counts:    make(map[graph.VertexID]int),
		hot:       make(map[graph.VertexID]struct{}),
		rotated:   time.Now(),
	}
}

// touch counts one arrival for v and reports whether v is currently hot.
// A vertex is hot from the moment it crosses the threshold mid-window until
// the end of the window after the last one it crossed it in.
func (h *hotTracker) touch(v graph.VertexID) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	if now.Sub(h.rotated) >= h.window {
		next := make(map[graph.VertexID]struct{})
		if now.Sub(h.rotated) < 2*h.window {
			// Vertices hot in the window that just closed stay hot for one
			// more: traffic skew outlives a 1-window blip, and flapping a
			// vertex between 1 and k owners churns caches for nothing.
			for u, n := range h.counts {
				if n >= h.threshold {
					next[u] = struct{}{}
				}
			}
		}
		h.hot = next
		h.counts = make(map[graph.VertexID]int)
		h.rotated = now
	}
	if _, ok := h.counts[v]; ok || len(h.counts) < h.maxTrack {
		h.counts[v]++
	}
	if h.counts[v] >= h.threshold {
		return true
	}
	_, ok := h.hot[v]
	return ok
}

// hotCount reports how many vertices are currently marked hot (metrics).
func (h *hotTracker) hotCount() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.hot)
}

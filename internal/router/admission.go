package router

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// admission is the router's load-shedding gate: a windowed p99 latency
// estimate (two rotating metrics.Histograms — the completed window plus the
// one filling) compared against a configured SLO, and an in-flight counter
// compared against a hard cap. When either trips, Query sheds with a typed
// *serve.OverloadError instead of queueing into a latency collapse.
//
// Recovery is built into the rotation: shed requests are never observed, so
// after two quiet windows both histograms are empty, the p99 estimate drops
// to zero and admission resumes. The cumulative router_request_ns histogram
// in the registry is unaffected — this type only adds the windowing the
// registry's monotone histograms deliberately do not have.
type admission struct {
	slo    time.Duration
	window time.Duration

	mu      sync.Mutex
	cur     *metrics.Histogram
	prev    *metrics.Histogram
	rotated time.Time
}

// DefaultSLOWindow is the p99 measurement window when Options.SLOWindow is
// unset: long enough to hold a meaningful sample, short enough that a
// traffic spike is detected (and a recovery noticed) within ~2 windows.
const DefaultSLOWindow = time.Second

func newAdmission(slo, window time.Duration) *admission {
	if window <= 0 {
		window = DefaultSLOWindow
	}
	return &admission{
		slo:     slo,
		window:  window,
		cur:     &metrics.Histogram{},
		prev:    &metrics.Histogram{},
		rotated: time.Now(),
	}
}

// observe records one admitted request's latency into the filling window.
func (a *admission) observe(d time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rotate(time.Now())
	a.cur.Observe(d.Nanoseconds())
	a.mu.Unlock()
}

// rotate advances the windows; callers hold a.mu. A gap of two or more
// windows clears both histograms at once.
func (a *admission) rotate(now time.Time) {
	for now.Sub(a.rotated) >= a.window {
		a.prev, a.cur = a.cur, &metrics.Histogram{}
		if now.Sub(a.rotated) >= 2*a.window {
			// Idle gap: nothing in the last full window either.
			a.prev = &metrics.Histogram{}
			a.rotated = now
			return
		}
		a.rotated = a.rotated.Add(a.window)
	}
}

// overloaded reports whether the windowed p99 exceeds the SLO, and what the
// estimate was. With no SLO configured it never trips.
func (a *admission) overloaded() (p99 time.Duration, over bool) {
	if a == nil || a.slo <= 0 {
		return 0, false
	}
	a.mu.Lock()
	a.rotate(time.Now())
	est := a.prev.Quantile(0.99)
	if cur := a.cur.Quantile(0.99); cur > est {
		// Mid-window spikes count immediately; waiting a full window to
		// notice an overload defeats the point of shedding.
		est = cur
	}
	a.mu.Unlock()
	p99 = time.Duration(est)
	return p99, p99 > a.slo
}

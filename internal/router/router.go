// Package router is FlexGraph-Go's scale-out serving tier: one process that
// fans per-vertex inference queries out to N InferenceServer replicas and
// merges the partial replies, presenting the whole fleet as a single
// serve.Querier (and therefore a single HTTP endpoint).
//
// Vertex IDs are consistent-hashed onto the replica ring, so a vertex is
// always answered by the same replica and that replica's versioned
// embedding cache stays hot on its shard — the cache-locality argument for
// sharding. The tier degrades instead of collapsing: replicas that fail are
// evicted from the ring and their shards retried on the next replica
// clockwise (a background prober restores them), admission control sheds
// load with typed *serve.OverloadError (HTTP 429) when the windowed p99
// latency breaks the SLO or the in-flight cap is hit, and hot vertices of
// power-law traffic are spread over extra overflow replicas so one hub
// cannot turn its owner into the fleet straggler.
//
// Because every replica serves the same model over the same graph and the
// per-vertex determinism of the serve planner makes answers independent of
// batch composition, routed answers are bit-identical to a single
// whole-graph server for deterministic-neighborhood models — sharding is a
// pure capacity move, never a numerics one.
package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Defaults for the zero-valued Options fields.
const (
	// DefaultMaxInflight is the admission cap on concurrently routed
	// requests.
	DefaultMaxInflight = 4096
	// DefaultHealthEvery is the health-probe period for evicted replicas.
	DefaultHealthEvery = 250 * time.Millisecond
	// DefaultReplicationFactor is how many replicas (primary + overflow)
	// share a hot vertex.
	DefaultReplicationFactor = 2
)

// Replica names one backend of the router: any Querier — a serve.Client
// dialing a remote process, or an in-process *serve.Server in tests and
// single-binary deployments.
type Replica struct {
	// Name labels the replica in errors, spans and metrics; "" defaults
	// to "replica-<index>".
	Name string
	// Querier answers the replica's shard. The router does not close it.
	Querier serve.Querier
}

// Options configures New. Replicas is required; everything else has a
// serviceable zero value.
type Options struct {
	// Replicas is the backend fleet, in ring order. At least one.
	Replicas []Replica
	// VirtualNodes is the per-replica point count on the consistent-hash
	// ring (<= 0 selects DefaultVirtualNodes).
	VirtualNodes int
	// MaxAttempts bounds how many replicas one shard query tries before
	// failing (<= 0 tries every replica once).
	MaxAttempts int
	// SLO is the p99 latency target for admission control: while the
	// windowed p99 of routed requests exceeds it, new requests shed with
	// *serve.OverloadError. 0 disables latency shedding.
	SLO time.Duration
	// SLOWindow is the p99 measurement window (<= 0 selects
	// DefaultSLOWindow).
	SLOWindow time.Duration
	// MaxInflight caps concurrently admitted requests (<= 0 selects
	// DefaultMaxInflight; admission never blocks, it sheds).
	MaxInflight int
	// MaxQueryVertices caps one routed query's vertex count, like
	// serve.Options.MaxQueryVertices (0 selects the serve default, < 0
	// removes the cap).
	MaxQueryVertices int
	// HotThreshold marks a vertex hot at this many arrivals per HotWindow,
	// spreading its queries over ReplicationFactor replicas. 0 disables
	// overflow replication.
	HotThreshold int
	// HotWindow is the hot-vertex measurement window (<= 0 selects
	// DefaultHotWindow).
	HotWindow time.Duration
	// ReplicationFactor is how many replicas share a hot vertex
	// (<= 0 selects DefaultReplicationFactor; capped at the fleet size).
	ReplicationFactor int
	// FailureThreshold evicts a replica from the ring after this many
	// consecutive query failures (<= 0 selects 1 — fail over immediately;
	// the health prober restores the replica when it answers again).
	FailureThreshold int
	// HealthEvery is the probe period for evicted replicas (<= 0 selects
	// DefaultHealthEvery).
	HealthEvery time.Duration
	// Metrics receives the router_* counters and histograms; nil disables.
	Metrics *metrics.Registry
	// Tracer records route and shard spans; nil disables.
	Tracer *trace.Tracer
}

// replicaState is one backend plus its health bookkeeping.
type replicaState struct {
	name     string
	q        serve.Querier
	healthy  atomic.Bool
	failures atomic.Int32

	requests *metrics.Counter
	errs     *metrics.Counter
	hgauge   *metrics.Gauge
}

// Router fans queries out over the replica ring. Create with New, query
// with Query (or over HTTP via Handler/Mux/ListenAndServe), stop with
// Close. Router satisfies serve.Querier, so a router can itself be a
// replica of a higher-level router.
type Router struct {
	reps        []*replicaState
	ring        *ring
	adm         *admission
	hot         *hotTracker
	replication int
	maxAttempts int
	maxVerts    int
	maxInflight int
	failThresh  int32
	healthEvery time.Duration

	inflight atomic.Int64
	rr       atomic.Uint64 // round-robin cursor spreading hot vertices

	reg    *metrics.Registry
	tracer *trace.Tracer

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

var _ serve.Querier = (*Router)(nil)

// New validates opts, builds the hash ring and starts the health prober.
func New(opts Options) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("router: Options.Replicas is required")
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(opts.Replicas) {
		maxAttempts = len(opts.Replicas)
	}
	maxInflight := opts.MaxInflight
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	maxVerts := opts.MaxQueryVertices
	if maxVerts == 0 {
		maxVerts = serve.DefaultMaxQueryVertices
	}
	replication := opts.ReplicationFactor
	if replication <= 0 {
		replication = DefaultReplicationFactor
	}
	if replication > len(opts.Replicas) {
		replication = len(opts.Replicas)
	}
	failThresh := opts.FailureThreshold
	if failThresh <= 0 {
		failThresh = 1
	}
	healthEvery := opts.HealthEvery
	if healthEvery <= 0 {
		healthEvery = DefaultHealthEvery
	}
	r := &Router{
		ring:        newRing(len(opts.Replicas), opts.VirtualNodes),
		adm:         newAdmission(opts.SLO, opts.SLOWindow),
		hot:         newHotTracker(opts.HotThreshold, opts.HotWindow),
		replication: replication,
		maxAttempts: maxAttempts,
		maxVerts:    maxVerts,
		maxInflight: maxInflight,
		failThresh:  int32(failThresh),
		healthEvery: healthEvery,
		reg:         opts.Metrics,
		tracer:      opts.Tracer,
		stop:        make(chan struct{}),
	}
	for i, rep := range opts.Replicas {
		if rep.Querier == nil {
			return nil, fmt.Errorf("router: replica %d has a nil Querier", i)
		}
		name := rep.Name
		if name == "" {
			name = fmt.Sprintf("replica-%d", i)
		}
		st := &replicaState{
			name:     name,
			q:        rep.Querier,
			requests: r.reg.Counter(fmt.Sprintf("router_replica_%d_requests_total", i)),
			errs:     r.reg.Counter(fmt.Sprintf("router_replica_%d_errors_total", i)),
			hgauge:   r.reg.Gauge(fmt.Sprintf("router_replica_%d_healthy", i)),
		}
		st.healthy.Store(true)
		st.hgauge.Set(1)
		r.reps = append(r.reps, st)
	}
	r.reg.Gauge("router_replicas").Set(float64(len(r.reps)))
	r.reg.Gauge("router_replicas_healthy").Set(float64(len(r.reps)))
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Close stops the health prober. It does not close the replica Queriers —
// the router does not own them.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// ModelVersion returns the minimum model version across healthy replicas —
// the version every routed answer is guaranteed to be at least as new as
// during a rollout (0 when no replica is healthy or contacted yet).
func (r *Router) ModelVersion() int64 {
	min := int64(math.MaxInt64)
	for _, st := range r.reps {
		if !st.healthy.Load() {
			continue
		}
		if v := st.q.ModelVersion(); v < min {
			min = v
		}
	}
	if min == math.MaxInt64 {
		return 0
	}
	return min
}

// HealthyReplicas returns how many replicas are currently on the ring.
func (r *Router) HealthyReplicas() int {
	n := 0
	for _, st := range r.reps {
		if st.healthy.Load() {
			n++
		}
	}
	return n
}

// aliveMask snapshots replica health for one routing decision.
func (r *Router) aliveMask() []bool {
	alive := make([]bool, len(r.reps))
	for i, st := range r.reps {
		alive[i] = st.healthy.Load()
	}
	return alive
}

// Query consistent-hashes the vertices over the replica ring, fans the
// shard queries out concurrently, and merges the partial replies back into
// input order. Vertices repeat in the reply exactly as they repeated in the
// request. Failed shards retry on the ring's next replica; admission
// control may shed the whole request with *serve.OverloadError before any
// replica is touched.
func (r *Router) Query(ctx context.Context, vertices []graph.VertexID) (*serve.Reply, error) {
	t0 := time.Now()
	span := r.tracer.Begin(0, 0, int32(len(vertices)), trace.CatRoute, "route")
	defer span.End()
	r.reg.Counter("router_requests_total").Inc()
	r.reg.Counter("router_request_vertices_total").Add(int64(len(vertices)))
	if len(vertices) == 0 {
		return &serve.Reply{ModelVersion: r.ModelVersion()}, nil
	}
	if r.maxVerts > 0 && len(vertices) > r.maxVerts {
		r.reg.Counter("router_errors_total").Inc()
		return nil, &serve.QueryLimitError{Count: len(vertices), Limit: r.maxVerts}
	}

	// Admission: a hard in-flight cap, then the latency SLO gate. Shedding
	// here — before any replica is touched — is what keeps an overloaded
	// fleet answering the traffic it can take instead of timing out all of
	// it.
	if n := r.inflight.Add(1); int(n) > r.maxInflight {
		r.inflight.Add(-1)
		r.reg.Counter("router_shed_total").Inc()
		return nil, &serve.OverloadError{Inflight: int(n), MaxInflight: r.maxInflight}
	}
	defer r.inflight.Add(-1)
	if p99, over := r.adm.overloaded(); over {
		r.reg.Counter("router_shed_total").Inc()
		r.reg.Gauge("router_p99_ns").Set(float64(p99.Nanoseconds()))
		return nil, &serve.OverloadError{P99: p99, SLO: r.adm.slo}
	}

	// Assign each distinct vertex to a replica: the ring owner, or — for
	// vertices the tracker marks hot — round-robin over the primary plus
	// its ring successors, so hub traffic spreads instead of piling onto
	// one replica.
	alive := r.aliveMask()
	assigned := make(map[graph.VertexID]int, len(vertices))
	groups := make(map[int][]graph.VertexID)
	for _, v := range vertices {
		if _, ok := assigned[v]; ok {
			continue
		}
		var rep int
		if r.hot.touch(v) && r.replication > 1 {
			owners := r.ring.successors(v, r.replication, alive)
			rep = owners[int(r.rr.Add(1))%len(owners)]
			r.reg.Counter("router_hot_routed_total").Inc()
		} else {
			var ok bool
			rep, ok = r.ring.owner(v, alive)
			if !ok {
				return nil, fmt.Errorf("router: empty replica ring")
			}
		}
		assigned[v] = rep
		groups[rep] = append(groups[rep], v)
	}
	if r.hot != nil {
		r.reg.Gauge("router_hot_vertices").Set(float64(r.hot.hotCount()))
	}

	// Fan out, one goroutine per shard, all under the caller's context.
	type shard struct {
		rep   int
		verts []graph.VertexID
		reply *serve.Reply
		err   error
	}
	shards := make([]*shard, 0, len(groups))
	for rep := range r.reps {
		if verts, ok := groups[rep]; ok {
			shards = append(shards, &shard{rep: rep, verts: verts})
		}
	}
	if len(shards) > 1 {
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.reply, sh.err = r.queryShard(ctx, sh.rep, sh.verts, span.ID())
			}(sh)
		}
		wg.Wait()
	} else {
		sh := shards[0]
		sh.reply, sh.err = r.queryShard(ctx, sh.rep, sh.verts, span.ID())
	}

	// Merge in input order. Any shard failure fails the whole request with
	// that shard's (typed) error — partial answers would silently violate
	// the "reply rows correspond 1:1 with request vertices" contract.
	version := int64(math.MaxInt64)
	byVertex := make(map[graph.VertexID]serve.Result, len(assigned))
	for _, sh := range shards {
		if sh.err != nil {
			r.reg.Counter("router_errors_total").Inc()
			r.adm.observe(time.Since(t0))
			return nil, sh.err
		}
		if sh.reply.ModelVersion < version {
			version = sh.reply.ModelVersion
		}
		for _, res := range sh.reply.Results {
			byVertex[res.Vertex] = res
		}
	}
	reply := &serve.Reply{ModelVersion: version, Results: make([]serve.Result, len(vertices))}
	for i, v := range vertices {
		res, ok := byVertex[v]
		if !ok {
			r.reg.Counter("router_errors_total").Inc()
			return nil, fmt.Errorf("router: replica dropped vertex %d from its reply", v)
		}
		reply.Results[i] = res
	}
	d := time.Since(t0)
	r.adm.observe(d)
	r.reg.Histogram("router_request_ns").ObserveExemplar(d.Nanoseconds(), span.ID())
	return reply, nil
}

// queryShard runs one shard's query against its primary replica, failing
// over along the ring on retryable errors. The parent span ID threads the
// shard spans under the route span.
func (r *Router) queryShard(ctx context.Context, primary int, verts []graph.VertexID, parent uint64) (*serve.Reply, error) {
	tried := make([]bool, len(r.reps))
	rep := primary
	var lastErr error
	for attempt := 0; attempt < r.maxAttempts && rep >= 0; attempt++ {
		tried[rep] = true
		st := r.reps[rep]
		st.requests.Inc()
		sp := r.tracer.BeginChild(0, 0, int32(len(verts)), trace.CatRoute, "shard:"+st.name, parent)
		reply, err := st.q.Query(ctx, verts)
		sp.End()
		if err == nil {
			r.markHealthy(st)
			return reply, nil
		}
		st.errs.Inc()
		r.reg.Counter("router_replica_errors_total").Inc()
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		r.markFailure(st)
		rep = r.nextReplica(verts[0], tried)
		if rep >= 0 {
			r.reg.Counter("router_retries_total").Inc()
		}
	}
	return nil, fmt.Errorf("router: shard of %d vertices failed on every tried replica (primary %s): %w",
		len(verts), r.reps[primary].name, lastErr)
}

// retryable reports whether a replica error can be cured by asking a
// different replica: infrastructure failures can, request errors cannot.
func retryable(err error) bool {
	var limit *serve.QueryLimitError
	switch {
	case errors.Is(err, serve.ErrBadVertex), errors.As(err, &limit):
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	default:
		// ErrClosed, transport failures, replica-side overload: the next
		// replica on the ring may well answer.
		return true
	}
}

// nextReplica picks the failover target for a shard keyed by vertex v: the
// first untried healthy replica in ring order from v, falling back to any
// untried replica when none is healthy (its typed error is more useful than
// a synthetic one). Returns -1 when every replica was tried.
func (r *Router) nextReplica(v graph.VertexID, tried []bool) int {
	order := r.ring.successors(v, len(r.reps), nil)
	for _, rep := range order {
		if !tried[rep] && r.reps[rep].healthy.Load() {
			return rep
		}
	}
	for _, rep := range order {
		if !tried[rep] {
			return rep
		}
	}
	return -1
}

// markFailure counts one failure against st, evicting it from the ring at
// the threshold.
func (r *Router) markFailure(st *replicaState) {
	if st.failures.Add(1) >= r.failThresh && st.healthy.CompareAndSwap(true, false) {
		st.hgauge.Set(0)
		r.reg.Counter("router_evictions_total").Inc()
		r.reg.Gauge("router_replicas_healthy").Set(float64(r.HealthyReplicas()))
	}
}

// markHealthy clears st's failure count, restoring it to the ring if it
// was evicted.
func (r *Router) markHealthy(st *replicaState) {
	st.failures.Store(0)
	if st.healthy.CompareAndSwap(false, true) {
		st.hgauge.Set(1)
		r.reg.Counter("router_revivals_total").Inc()
		r.reg.Gauge("router_replicas_healthy").Set(float64(r.HealthyReplicas()))
	}
}

// healthLoop probes evicted replicas every healthEvery and restores the
// ones that answer. Healthy replicas are not probed — live traffic is
// their health check.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.healthEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			for _, st := range r.reps {
				if st.healthy.Load() {
					continue
				}
				if r.probe(st) == nil {
					r.markHealthy(st)
				}
			}
		}
	}
}

// probe checks one replica: Ping when the Querier supports it (serve.Client
// does, against /v1/healthz), otherwise an empty Query — which every
// Querier answers from its fast path without touching the execution
// pipeline.
func (r *Router) probe(st *replicaState) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.healthEvery)
	defer cancel()
	if p, ok := st.q.(interface{ Ping(context.Context) error }); ok {
		return p.Ping(ctx)
	}
	_, err := st.q.Query(ctx, nil)
	return err
}

// Handler returns the router's inference endpoints — the same HTTP surface
// a single replica serves, so clients cannot tell a fleet from one server.
func (r *Router) Handler() http.Handler {
	return serve.NewHTTPHandler(r, serve.HTTPOptions{})
}

// Mux mounts the inference endpoints alongside the observability surface
// (/metrics, /trace, /trace/chrome, expvar, pprof) on one ServeMux.
func (r *Router) Mux() *http.ServeMux {
	mux := trace.DebugMux(r.tracer, r.reg)
	mux.Handle("/v1/", r.Handler())
	return mux
}

// ListenAndServe binds addr and serves Mux until the returned shutdown func
// is called (graceful drain, see serve.ListenAndServe). The Router itself
// is left running — pair with (*Router).Close.
func (r *Router) ListenAndServe(addr string) (boundAddr string, shutdown func() error, err error) {
	return serve.ListenAndServe(addr, r.Mux())
}

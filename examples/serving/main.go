// Command serving is the online-inference walkthrough: train a GCN briefly,
// stand up an InferenceServer over the trained model, and demonstrate the
// three things that make the serving path interesting —
//
//  1. micro-batched queries (concurrent requests share one forward pass),
//  2. the versioned embedding cache (repeat queries hit, an UpdateModel
//     invalidates),
//  3. parity with training-side inference: the served logits are
//     bit-identical to a whole-graph Trainer.Predict.
//
// It talks to the server both in-process (srv.Query) and over HTTP.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"

	flexgraph "repro"
)

func main() {
	// Train a small model to serve.
	d := flexgraph.RedditLike(flexgraph.DatasetConfig{Scale: 0.1, Seed: 1})
	fmt.Println("dataset:", d.Stats())
	rng := flexgraph.NewRNG(1)
	model := flexgraph.NewGCN(d.FeatureDim(), 32, d.NumClasses, rng)
	tr := flexgraph.NewTrainerWith(model, flexgraph.TrainerOptions{
		Graph:     d.Graph,
		Features:  d.Features,
		Labels:    d.Labels,
		TrainMask: d.TrainMask,
		Seed:      1,
	})
	for epoch := 1; epoch <= 10; epoch++ {
		if _, err := tr.Epoch(); err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	acc, err := tr.Evaluate(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained gcn: accuracy %.3f\n\n", acc)

	// Stand up the inference server, with metrics and tracing attached.
	reg := flexgraph.NewMetricsRegistry()
	tracer := flexgraph.NewTracer(0)
	srv, err := flexgraph.NewInferenceServer(flexgraph.ServeOptions{
		Model:    model,
		Graph:    d.Graph,
		Features: d.Features,
		Metrics:  reg,
		Tracer:   tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// 1. Micro-batching: fire concurrent single-vertex queries; the
	// dispatcher coalesces them into shared forward passes.
	var wg sync.WaitGroup
	for v := 0; v < 32; v++ {
		wg.Add(1)
		go func(v flexgraph.VertexID) {
			defer wg.Done()
			if _, err := srv.Query(context.Background(), []flexgraph.VertexID{v}); err != nil {
				log.Printf("query %d: %v", v, err)
			}
		}(flexgraph.VertexID(v))
	}
	wg.Wait()
	hits := reg.Counter("serve_cache_hits_total").Load()
	batches := reg.Counter("serve_batches_total").Load()
	fmt.Printf("32 concurrent queries ran as %d micro-batches\n", batches)

	// 2. The embedding cache: re-query the same vertices — the top layer
	// answers straight from cache.
	verts := []flexgraph.VertexID{0, 1, 2, 3, 4, 5, 6, 7}
	if _, err := srv.Query(context.Background(), verts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat query: +%d cache hits (%d rows resident)\n",
		reg.Counter("serve_cache_hits_total").Load()-hits, srv.CacheLen())

	// Updating the model bumps the version and invalidates every cached row.
	if err := srv.UpdateModel(func() error { _, err := tr.Epoch(); return err }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after UpdateModel: model version %d, next queries recompute\n\n", srv.ModelVersion())

	// 3. Parity: served logits are bit-identical to Trainer.Predict.
	reply, err := srv.Query(context.Background(), verts)
	if err != nil {
		log.Fatal(err)
	}
	whole, err := tr.Predict()
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for _, r := range reply.Results {
		for j, x := range r.Logits {
			if x != whole.At(int(r.Vertex), j) {
				exact = false
			}
		}
	}
	fmt.Printf("served logits bit-identical to Trainer.Predict: %v\n\n", exact)

	// Over HTTP: the same endpoints flexgraph-serve exposes, sharing one
	// mux with /metrics and /trace.
	addr, shutdown, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	body, _ := json.Marshal(map[string]any{"vertices": []int{0, 7, 42}})
	resp, err := http.Post("http://"+addr+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var httpReply flexgraph.ServeReply
	if err := json.NewDecoder(resp.Body).Decode(&httpReply); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTTP POST /v1/predict -> %s, model version %d:\n", resp.Status, httpReply.ModelVersion)
	for _, r := range httpReply.Results {
		fmt.Printf("  vertex %4d -> class %d\n", r.Vertex, r.Class)
	}
}

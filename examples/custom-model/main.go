// Command custom-model builds a GNN that exists in no library — a
// "walk-and-hop" network whose neighborhood mixes two structured neighbor
// types per vertex: the top-k random-walk destinations (PinSage-style) AND
// the exact 2-hop BFS frontier (JK-Net-style) — to demonstrate that a new
// INHA model is a page of code under NAU: pick a schema tree, compose
// Fig. 5 UDFs, choose one Fig. 6 aggregation UDF per HDG level, and write
// the Update rule. The framework does the rest: parallel neighbor
// selection, compact HDG storage, hybrid execution, training.
package main

import (
	"fmt"
	"log"

	flexgraph "repro"
)

// walkHopLayer is the custom NAU layer.
type walkHopLayer struct {
	lin    *flexgraph.Linear
	act    bool
	schema *flexgraph.SchemaTree
	walks  flexgraph.NeighborUDF
	hops   flexgraph.NeighborUDF
}

func newWalkHopLayer(in, out int, act bool, rng *flexgraph.RNG) *walkHopLayer {
	return &walkHopLayer{
		lin:    flexgraph.NewLinear(2*in, out, true, rng),
		act:    act,
		schema: flexgraph.NewSchemaTree("walked", "hop2"),
		walks:  flexgraph.RandomWalkUDF(5, 3, 5),
		hops:   flexgraph.HopFrontierUDF(2),
	}
}

// Schema declares the two neighbor types.
func (l *walkHopLayer) Schema() *flexgraph.SchemaTree { return l.schema }

// NeighborUDF composes the two Fig. 5 selections: walk destinations become
// one multi-vertex instance of type "walked"; the 2-hop frontier becomes
// one instance of type "hop2".
func (l *walkHopLayer) NeighborUDF() flexgraph.NeighborUDF {
	return func(g *flexgraph.Graph, s *flexgraph.SchemaTree, v flexgraph.VertexID, rng *flexgraph.RNG) []flexgraph.HDGRecord {
		var recs []flexgraph.HDGRecord
		var walked []flexgraph.VertexID
		for _, r := range l.walks(g, s, v, rng) {
			walked = append(walked, r.Nei...)
		}
		if len(walked) > 0 {
			recs = append(recs, flexgraph.HDGRecord{Root: v, Nei: walked, Type: 0})
		}
		for _, r := range l.hops(g, s, v, rng) {
			if r.Type == 1 { // distance exactly 2
				recs = append(recs, flexgraph.HDGRecord{Root: v, Nei: r.Nei, Type: 1})
			}
		}
		return recs
	}
}

// Aggregation: mean within each instance, sum per type, max across the two
// neighbor types — three Fig. 6 levels.
func (l *walkHopLayer) Aggregation(ctx *flexgraph.LayerContext, feats *flexgraph.Value) *flexgraph.Value {
	return ctx.Aggregate(feats, flexgraph.AggMean, flexgraph.AggSum, flexgraph.AggMean)
}

// Update concatenates self and neighborhood representations.
func (l *walkHopLayer) Update(_ *flexgraph.LayerContext, feats, nbr *flexgraph.Value) *flexgraph.Value {
	out := l.lin.Forward(flexgraph.ConcatValues(feats, nbr))
	if l.act {
		out = flexgraph.ReLUValue(out)
	}
	return out
}

// Parameters exposes the trainable weights.
func (l *walkHopLayer) Parameters() []*flexgraph.Value { return l.lin.Parameters() }

func main() {
	d := flexgraph.RedditLike(flexgraph.DatasetConfig{Scale: 0.15, Seed: 9})
	fmt.Println("dataset:", d.Stats())

	rng := flexgraph.NewRNG(9)
	model := &flexgraph.Model{
		Name: "WalkHop",
		Layers: []flexgraph.Layer{
			newWalkHopLayer(d.FeatureDim(), 32, true, rng),
			newWalkHopLayer(32, d.NumClasses, false, rng),
		},
		Cache: flexgraph.CachePerEpoch, // walks change every epoch
	}

	tr := flexgraph.NewTrainerWith(model, flexgraph.TrainerOptions{
		Graph:     d.Graph,
		Features:  d.Features,
		Labels:    d.Labels,
		TrainMask: d.TrainMask,
		Seed:      9,
	})
	for epoch := 1; epoch <= 20; epoch++ {
		loss, err := tr.Epoch()
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		if epoch%4 == 0 || epoch == 1 {
			acc, err := tr.Evaluate(nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %2d  loss %.4f  acc %.3f\n", epoch, loss, acc)
		}
	}
	h := tr.HDG()
	fmt.Printf("\nHDG: %d roots, %d instances across %d neighbor types (%d bytes)\n",
		h.NumRoots(), h.NumInstances(), h.NumTypes(), h.NumBytes())
	fmt.Println(tr.Breakdown.Table4Row(model.Name))
}

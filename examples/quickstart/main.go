// Command quickstart trains a 2-layer GCN on a small Reddit-shaped graph
// with the FlexGraph-Go public API: build a dataset, construct a model,
// train for a few epochs, and report loss, accuracy and the NAU stage
// breakdown.
package main

import (
	"fmt"
	"log"

	flexgraph "repro"
)

func main() {
	// A laptop-sized dense community graph (Table-1 "Reddit" shape).
	d := flexgraph.RedditLike(flexgraph.DatasetConfig{Scale: 0.25, Seed: 1})
	fmt.Println("dataset:", d.Stats())

	rng := flexgraph.NewRNG(1)
	model := flexgraph.NewGCN(d.FeatureDim(), 32, d.NumClasses, rng)

	tr := flexgraph.NewTrainerWith(model, flexgraph.TrainerOptions{
		Graph:     d.Graph,
		Features:  d.Features,
		Labels:    d.Labels,
		TrainMask: d.TrainMask,
		Seed:      1,
	})
	for epoch := 1; epoch <= 30; epoch++ {
		loss, err := tr.Epoch()
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		if epoch%5 == 0 || epoch == 1 {
			acc, err := tr.Evaluate(nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %2d  loss %.4f  accuracy %.3f\n", epoch, loss, acc)
		}
	}

	fmt.Println("\nNAU stage breakdown (all epochs):")
	fmt.Println(tr.Breakdown.Table4Row(model.Name))
}

// Command heterogeneous trains MAGNN (INHA) on an IMDB-shaped
// heterogeneous graph of movies, directors and actors. The model's
// "neighbors" are metapath instances (e.g. Movie-Director-Movie), and
// aggregation is hierarchical: instance members -> instances -> metapath
// types -> vertex — the computation pattern that is beyond GAS-like
// abstractions (§2.3) and that FlexGraph executes with its hybrid strategy:
// feature fusion at the bottom, scatter-softmax attention in the middle,
// and a dense reshape+reduce at the schema level (Fig. 10).
package main

import (
	"fmt"
	"log"

	flexgraph "repro"
)

func main() {
	d := flexgraph.IMDBLike(flexgraph.DatasetConfig{Scale: 0.3, Seed: 3})
	fmt.Println("dataset:", d.Stats())
	fmt.Println("metapaths:")
	for _, mp := range d.Metapaths {
		fmt.Printf("  %s (%d vertices per instance)\n", mp.Name, mp.Length())
	}

	rng := flexgraph.NewRNG(3)
	model := flexgraph.NewMAGNN(d.FeatureDim(), 32, d.NumClasses, d.Metapaths,
		flexgraph.MAGNNConfig{MaxInstances: 10}, rng)

	tr := flexgraph.NewTrainerWith(model, flexgraph.TrainerOptions{
		Graph:     d.Graph,
		Features:  d.Features,
		Labels:    d.Labels,
		TrainMask: d.TrainMask,
		Seed:      3,
	})
	for epoch := 1; epoch <= 20; epoch++ {
		loss, err := tr.Epoch()
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		if epoch%4 == 0 || epoch == 1 {
			fmt.Printf("epoch %2d  loss %.4f\n", epoch, loss)
		}
	}

	acc, err := tr.Evaluate(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal accuracy %.3f\n", acc)

	// HDGs are built once (metapath instances never change, §3.2) and the
	// compact §4.1 storage keeps them close to the input graph's size
	// (Table 5).
	h := tr.HDG()
	fmt.Printf("\nHDG: %d roots, %d metapath instances\n", h.NumRoots(), h.NumInstances())
	fmt.Printf("HDG memory: %d bytes (%.2f%% of the input graph)\n",
		h.NumBytes(), 100*float64(h.NumBytes())/float64(d.Graph.NumBytes()))
	fmt.Println("\nNAU stage breakdown:")
	fmt.Println(tr.Breakdown.Table4Row(model.Name))
}

// Command recommend runs the paper's recommendation-system motivation: a
// PinSage (INFA) model over a power-law product co-interaction graph. Each
// item's "neighbors" are the top-k most visited items across random walks
// (importance-based indirect neighborhood, §2.2), selected by the
// NeighborSelection stage and aggregated flat — something GAS-like
// frameworks can only simulate with expensive propagation stages.
package main

import (
	"fmt"
	"log"

	flexgraph "repro"
)

func main() {
	// Power-law item graph: a few blockbuster items dominate degrees,
	// exactly the regime where random-walk neighborhoods beat 1-hop ones.
	d := flexgraph.FB91Like(flexgraph.DatasetConfig{Scale: 0.2, Seed: 7})
	fmt.Println("dataset:", d.Stats())

	cfg := flexgraph.DefaultPinSageConfig() // 10 walks × 3 hops, top-10
	fmt.Printf("neighborhood: %d walks × %d hops, top-%d visited\n",
		cfg.NumWalks, cfg.Hops, cfg.TopK)

	rng := flexgraph.NewRNG(7)
	model := flexgraph.NewPinSage(d.FeatureDim(), 32, d.NumClasses, cfg, rng)

	tr := flexgraph.NewTrainerWith(model, flexgraph.TrainerOptions{
		Graph:     d.Graph,
		Features:  d.Features,
		Labels:    d.Labels,
		TrainMask: d.TrainMask,
		Seed:      7,
	})
	for epoch := 1; epoch <= 40; epoch++ {
		loss, err := tr.Epoch()
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		if epoch%8 == 0 || epoch == 1 {
			fmt.Printf("epoch %2d  loss %.4f\n", epoch, loss)
		}
	}

	acc, err := tr.Evaluate(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal accuracy %.3f\n", acc)
	fmt.Println("\nNAU stage breakdown — note the NeighborSelection share")
	fmt.Println("(random walks re-run every epoch, unlike GCN's 0%):")
	fmt.Println(tr.Breakdown.Table4Row(model.Name))
}

// Command expressivity demonstrates the paper's §3.2 claim: one
// abstraction, NAU, expresses GNN models from every category without
// changing the framework — DNFA (GCN, GIN, G-GCN: direct neighbors, flat
// aggregation, no HDGs), INFA (PinSage: indirect random-walk neighbors,
// flat HDGs), and INHA (MAGNN, P-GNN, JK-Net: structured neighbors,
// hierarchical HDGs). It trains all seven on the same heterogeneous graph
// and reports what each model's NeighborSelection produced.
package main

import (
	"fmt"
	"log"

	flexgraph "repro"
)

func main() {
	d := flexgraph.IMDBLike(flexgraph.DatasetConfig{Scale: 0.2, Seed: 11})
	fmt.Println("dataset:", d.Stats())
	fmt.Println()

	rng := flexgraph.NewRNG(11)
	models := []struct {
		category string
		model    *flexgraph.Model
	}{
		{"DNFA", flexgraph.NewGCN(d.FeatureDim(), 16, d.NumClasses, rng)},
		{"DNFA", flexgraph.NewGIN(d.FeatureDim(), 16, d.NumClasses, rng)},
		{"DNFA", flexgraph.NewGGCN(d.FeatureDim(), 16, d.NumClasses, rng)},
		{"INFA", flexgraph.NewPinSage(d.FeatureDim(), 16, d.NumClasses,
			flexgraph.PinSageConfig{NumWalks: 5, Hops: 3, TopK: 5}, rng)},
		{"INHA", flexgraph.NewMAGNN(d.FeatureDim(), 16, d.NumClasses, d.Metapaths,
			flexgraph.MAGNNConfig{MaxInstances: 8}, rng)},
		{"INHA", flexgraph.NewPGNN(d.Graph, d.FeatureDim(), 16, d.NumClasses, 4, 16, rng)},
		{"INHA", flexgraph.NewJKNet(d.FeatureDim(), 16, d.NumClasses, 2, rng)},
	}

	fmt.Printf("%-5s %-8s %-10s %-12s %-10s %s\n",
		"cat", "model", "loss(1)", "loss(10)", "HDG", "neighbor structure")
	for _, m := range models {
		tr := flexgraph.NewTrainerWith(m.model, flexgraph.TrainerOptions{
			Graph:     d.Graph,
			Features:  d.Features,
			Labels:    d.Labels,
			TrainMask: d.TrainMask,
			Seed:      11,
		})
		var first, last float32
		for epoch := 1; epoch <= 10; epoch++ {
			loss, err := tr.Epoch()
			if err != nil {
				log.Fatalf("%s: %v", m.model.Name, err)
			}
			if epoch == 1 {
				first = loss
			}
			last = loss
		}
		structure := "input graph (1-hop, no HDG built)"
		hdgInfo := "-"
		if h := tr.HDG(); h != nil {
			if h.IsFlat() {
				structure = "flat HDG: single-vertex instances"
			} else {
				structure = fmt.Sprintf("hierarchical HDG: %d types, multi-vertex instances", h.NumTypes())
			}
			hdgInfo = fmt.Sprintf("%d inst", h.NumInstances())
		}
		fmt.Printf("%-5s %-8s %-10.4f %-12.4f %-10s %s\n",
			m.category, m.model.Name, first, last, hdgInfo, structure)
	}

	fmt.Println("\nEvery model trained through the same three NAU stages;")
	fmt.Println("GAS-like abstractions express only the first category (§2.3).")
}

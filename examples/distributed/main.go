// Command distributed trains a gated GCN over a 4-worker in-process
// cluster, demonstrating the §5 machinery end to end: application-driven
// workload balancing (ADB) on a skewed power-law graph, partial
// aggregation with pipeline processing, and the resulting traffic.
package main

import (
	"fmt"
	"log"

	flexgraph "repro"
)

func main() {
	d := flexgraph.FB91Like(flexgraph.DatasetConfig{Scale: 0.15, Seed: 5})
	fmt.Println("dataset:", d.Stats())

	const workers = 4
	// Application-driven balancing: estimate per-root cost from degree
	// (the GCN aggregation workload) and let ADB migrate HDGs from
	// overloaded partitions, preferring plans that cut few dependencies.
	n := d.Graph.NumVertices()
	cost := make([]float64, n)
	for v := 0; v < n; v++ {
		cost[v] = 1 + float64(d.Graph.OutDegree(flexgraph.VertexID(v)))
	}
	hash := flexgraph.HashPartition(n, workers)
	adb := flexgraph.DefaultADB().Rebalance(d.Graph, hash, cost)
	fmt.Printf("balance factor: hash %.3f -> ADB %.3f\n",
		balance(hash, cost), balance(adb, cost))

	// G-GCN: mean aggregation keeps hub vertices numerically tame on the
	// power-law graph (the paper's GCN uses raw sums).
	factory := func(rng *flexgraph.RNG) *flexgraph.Model {
		return flexgraph.NewGGCN(d.FeatureDim(), 32, d.NumClasses, rng)
	}
	res, err := flexgraph.TrainDistributed(flexgraph.ClusterConfig{
		NumWorkers:   workers,
		Pipeline:     true,
		Strategy:     flexgraph.StrategyHA,
		Partitioning: adb,
		Epochs:       10,
		Seed:         5,
	}, d, factory)
	if err != nil {
		log.Fatal(err)
	}

	for i, loss := range res.Losses {
		fmt.Printf("epoch %2d  loss %.4f  wall %v\n", i+1, loss, res.EpochTimes[i].Round(1000))
	}
	fmt.Printf("\ntraffic: %d messages, %d bytes across %d workers\n",
		res.Merged.MessagesSent.Load(), res.Merged.BytesSent.Load(), workers)
}

func balance(p *flexgraph.Partitioning, cost []float64) float64 {
	loads := p.Loads(cost)
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	return max / (sum / float64(len(loads)))
}

package flexgraph

// End-to-end training-step benchmark for the kernel overhaul: one GCN epoch
// on a small Reddit-shaped dataset, run once with every kernel lever off
// (the seed configuration: goroutine-per-call dispatch, plain allocations,
// unblocked dense products, count-split fused ranges) and once with the
// levers on. allocs/op is the headline number — with pooling on, steady-state
// epochs recycle their aggregation outputs and gradient buffers instead of
// churning the GC.
//
//	go test -run xxx -bench TrainStep -benchmem .
//
// Results are recorded in BENCH_kernels.json.

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/nau"
	"repro/internal/tensor"
)

func setKernelLevers(on bool) {
	tensor.SetWorkerPool(on)
	tensor.SetBufferPooling(on)
	tensor.SetBlockedMatMul(on)
	engine.SetEdgeBalancedSplit(on)
}

func benchTrainStep(b *testing.B, on bool) {
	setKernelLevers(on)
	defer setKernelLevers(true)
	d := dataset.RedditLike(dataset.Config{Scale: 0.3, Seed: 1})
	model := models.NewGCN(d.FeatureDim(), 16, d.NumClasses, tensor.NewRNG(3))
	tr := nau.NewTrainerWith(model,
		nau.TrainerOptions{Graph: d.Graph, Features: d.Features, Labels: d.Labels, TrainMask: d.TrainMask, Seed: 1})
	tr.Engine = engine.New(engine.StrategyHA)
	if _, err := tr.Epoch(); err != nil { // warm-up: build HDG/adjacency caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainStepGCN(b *testing.B) {
	b.Run("seed-levers", func(b *testing.B) { benchTrainStep(b, false) })
	b.Run("opt-levers", func(b *testing.B) { benchTrainStep(b, true) })
}

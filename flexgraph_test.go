package flexgraph

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow through
// the public API only.
func TestPublicAPIQuickstart(t *testing.T) {
	d := RedditLike(DatasetConfig{Scale: 0.03, Seed: 1})
	rng := NewRNG(1)
	model := NewGCN(d.FeatureDim(), 16, d.NumClasses, rng)
	tr := NewTrainerWith(model, TrainerOptions{
		Graph:     d.Graph,
		Features:  d.Features,
		Labels:    d.Labels,
		TrainMask: d.TrainMask,
		Seed:      1,
	})
	var first, last float32
	for epoch := 0; epoch < 12; epoch++ {
		loss, err := tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	acc, err := tr.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 1.0/float64(d.NumClasses) {
		t.Fatalf("accuracy %v at or below chance", acc)
	}
}

// TestPublicAPIDistributed exercises the distributed entry point.
func TestPublicAPIDistributed(t *testing.T) {
	d := FB91Like(DatasetConfig{Scale: 0.02, Seed: 2})
	factory := func(rng *RNG) *Model {
		return NewGCN(d.FeatureDim(), 8, d.NumClasses, rng)
	}
	res, err := TrainDistributed(ClusterConfig{
		NumWorkers: 2, Pipeline: true, Strategy: StrategyHA, Epochs: 3, Seed: 3,
	}, d, factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 3 {
		t.Fatalf("losses = %v", res.Losses)
	}
}

// TestPublicAPISimulate exercises the multi-machine simulator.
func TestPublicAPISimulate(t *testing.T) {
	d := RedditLike(DatasetConfig{Scale: 0.02, Seed: 4})
	factory := func(rng *RNG) *Model {
		return NewPinSage(d.FeatureDim(), 8, d.NumClasses,
			PinSageConfig{NumWalks: 3, Hops: 2, TopK: 3}, rng)
	}
	res, err := Simulate(d, factory, SimConfig{NumWorkers: 4, Pipeline: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochTime <= 0 || res.Loss <= 0 {
		t.Fatalf("bad sim result: %+v", res)
	}
}

// TestPublicAPICheckpointAndDatasetIO exercises persistence helpers.
func TestPublicAPICheckpointAndDatasetIO(t *testing.T) {
	dir := t.TempDir()
	d := IMDBLike(DatasetConfig{Scale: 0.05, Seed: 6})
	dsPath := filepath.Join(dir, "d.fgds")
	if err := d.Save(dsPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph.NumEdges() != d.Graph.NumEdges() {
		t.Fatal("dataset IO mismatch")
	}

	rng := NewRNG(6)
	model := NewMAGNN(d.FeatureDim(), 8, d.NumClasses, d.Metapaths, MAGNNConfig{MaxInstances: 4}, rng)
	ckPath := filepath.Join(dir, "m.fgck")
	if err := SaveCheckpoint(ckPath, model.Parameters()); err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(ckPath, model.Parameters()); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIServing exercises the inference-serving surface end to end
// through the root package: train briefly, serve, and check parity with
// Predict plus context cancellation on both paths.
func TestPublicAPIServing(t *testing.T) {
	d := RedditLike(DatasetConfig{Scale: 0.03, Seed: 8})
	model := NewGCN(d.FeatureDim(), 8, d.NumClasses, NewRNG(8))
	tr := NewTrainerWith(model, TrainerOptions{
		Graph: d.Graph, Features: d.Features, Labels: d.Labels,
		TrainMask: d.TrainMask, Seed: 8,
	})
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := tr.Epoch(); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := NewInferenceServer(ServeOptions{
		Model: model, Graph: d.Graph, Features: d.Features,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reply, err := srv.Query(context.Background(), []VertexID{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := tr.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reply.Results {
		for j, x := range r.Logits {
			if want := whole.At(int(r.Vertex), j); x != want {
				t.Fatalf("vertex %d logit %d: served %v != Predict %v", r.Vertex, j, x, want)
			}
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Query(cancelled, []VertexID{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query with cancelled ctx: %v", err)
	}
	if _, err := tr.PredictContext(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictContext with cancelled ctx: %v", err)
	}
}

// TestPublicAPIKernelConfig checks the consolidated kernel-lever struct
// round-trips through the retained global setters.
func TestPublicAPIKernelConfig(t *testing.T) {
	orig := DefaultKernelConfig()
	defer orig.Apply()

	cfg := orig
	cfg.Parallelism = 2
	cfg.WorkerPool = false
	cfg.BlockedMatMul = false
	cfg.Apply()
	got := DefaultKernelConfig()
	if got.Parallelism != 2 || got.WorkerPool || got.BlockedMatMul {
		t.Fatalf("Apply did not take: %+v", got)
	}
	if !got.BufferPooling || !got.EdgeBalancedSplit {
		t.Fatalf("Apply clobbered untouched levers: %+v", got)
	}

	// The legacy per-lever setters still work and are visible in the struct.
	SetWorkerPool(true)
	if !DefaultKernelConfig().WorkerPool {
		t.Fatal("legacy setter invisible to DefaultKernelConfig")
	}
}

// TestPublicAPIPartitioners exercises the balancing surface.
func TestPublicAPIPartitioners(t *testing.T) {
	d := TwitterLike(DatasetConfig{Scale: 0.02, Seed: 7})
	n := d.Graph.NumVertices()
	cost := make([]float64, n)
	for v := 0; v < n; v++ {
		cost[v] = 1 + float64(d.Graph.OutDegree(VertexID(v)))
	}
	hash := HashPartition(n, 4)
	lp := LabelPropPartition(d.Graph, 4, 3, 1.2, 7)
	adb := DefaultADB().Rebalance(d.Graph, hash, cost)
	for _, p := range []*Partitioning{hash, lp, adb} {
		if len(p.Assign) != n {
			t.Fatal("partitioning does not cover the graph")
		}
	}
}
